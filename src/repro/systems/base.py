"""Shared plumbing of the system models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.cost import NcclCostModel
from repro.config import ClusterSpec, DGX_A100_CLUSTER, MoELayerSpec
from repro.hardware.device import A100_SXM_40GB, DeviceSpec
from repro.hardware.hetero import DeviceRates, DeviceRateTable, HeteroClusterSpec
from repro.hardware.topology import ClusterTopology
from repro.memory.footprint import FootprintModel
from repro.perfmodel.evalcache import Evaluator
from repro.perfmodel.workload import WorkloadSpec
from repro.sim.engine import SimEngine, SimResult


@dataclass(frozen=True)
class SystemReport:
    """One system's performance at one operating point."""

    system: str
    spec_name: str
    batch: int
    world_size: int
    iteration_time: float  # seconds, forward + backward of the MoE layer
    peak_memory_bytes: int  # per device
    num_partitions: int = 1
    strategy: str = "none"
    comp_utilization: float = 0.0

    def speedup_over(self, other: "SystemReport") -> float:
        return other.iteration_time / self.iteration_time

    def memory_vs(self, other: "SystemReport") -> float:
        return self.peak_memory_bytes / other.peak_memory_bytes


@dataclass
class SystemContext:
    """Cluster/device context shared by all system models in a comparison.

    The context also owns the memoized :class:`Evaluator`: every system
    model built on one context shares stage costs, makespans, footprints
    and recorded sims, so e.g. the granularity search and the strategy
    search stop recomputing each other's work.

    ``hetero`` installs a heterogeneous cluster: ``cluster`` and
    ``device`` are derived from it (its base cluster and default
    device), the topology carries its per-link bandwidth overrides, and
    evaluation runs the timeline once per distinct device profile,
    gating the iteration on the slowest one.  Every system model built
    on the context — and both MPipeMoE selection paths — therefore
    re-runs its Eq. 10 / Algorithm 1 searches under the skew.  A
    degenerate (all-identical) hetero spec has no profiles and no
    overrides: every layer collapses to the homogeneous fast path.
    """

    cluster: ClusterSpec = DGX_A100_CLUSTER
    device: DeviceSpec = A100_SXM_40GB
    world_size: int | None = None  # default: full cluster
    hetero: HeteroClusterSpec | None = None
    evaluator_max_entries: int | None = None  # LRU cap on the shared memo

    def __post_init__(self) -> None:
        overrides = None
        if self.hetero is not None:
            self.cluster = self.hetero.cluster
            self.device = self.hetero.default_device
            overrides = self.hetero.link_overrides(self.effective_world)
        self.topology = ClusterTopology(self.cluster, overrides)
        self.engine = SimEngine()
        self._sim_profiles = (
            ()
            if self.hetero is None
            else self.hetero.sim_profiles(self.effective_world)
        )
        self._profile_engines: dict[DeviceRates, SimEngine] = {}
        self.evaluator = Evaluator(self, max_entries=self.evaluator_max_entries)

    @property
    def effective_world(self) -> int:
        return self.world_size or self.cluster.world_size

    # -- heterogeneous views ------------------------------------------------
    @property
    def sim_profiles(self) -> tuple[DeviceRates, ...]:
        """Distinct (comp, mem) device profiles; empty when homogeneous."""
        return self._sim_profiles

    def engine_for(self, profile: DeviceRates) -> SimEngine:
        """An engine whose every simulated device runs at ``profile``.

        The representative-device timeline lives on one simulated
        device, so a default-only rate table prices "this device is the
        straggler" exactly; engines are cached per profile so their
        flat rate tables amortize across the whole study.
        """
        engine = self._profile_engines.get(profile)
        if engine is None:
            engine = SimEngine(device_rates=DeviceRateTable(default=profile))
            self._profile_engines[profile] = engine
        return engine

    @property
    def device_memory_bytes(self) -> int:
        """HBM capacity gating OOM checks: the smallest active device."""
        if self.hetero is None:
            return self.device.memory_bytes
        return self.hetero.min_memory_bytes(self.effective_world)

    @property
    def hetero_key(self) -> str:
        """Stable digest of the hetero spec ("" when homogeneous)."""
        return "" if self.hetero is None else self.hetero.key()

    def comm_model(self) -> NcclCostModel:
        return NcclCostModel(self.topology, self.effective_world)

    def footprint(
        self, spec: MoELayerSpec, workload: WorkloadSpec | None = None
    ) -> FootprintModel:
        return FootprintModel(spec, self.effective_world, workload=workload)


class SystemModel:
    """Base class: subclasses implement :meth:`evaluate`.

    ``workload`` (a :class:`~repro.perfmodel.workload.WorkloadSpec`)
    makes the evaluation routing-aware — top-k fan-out, activation
    dtype, gating skew, per-expert capacity; ``None`` (and any neutral
    spec) reproduces the paper's k=1 / half-precision / uniform
    defaults bit for bit.
    """

    name = "base"

    def __init__(self, context: SystemContext | None = None) -> None:
        self.context = context or SystemContext()

    def evaluate(
        self,
        spec: MoELayerSpec,
        batch: int,
        workload: WorkloadSpec | None = None,
    ) -> SystemReport:
        raise NotImplementedError

    def _report(
        self,
        spec: MoELayerSpec,
        batch: int,
        sim: SimResult,
        memory: int,
        n: int = 1,
        strategy: str = "none",
    ) -> SystemReport:
        return SystemReport(
            system=self.name,
            spec_name=spec.name,
            batch=batch,
            world_size=self.context.effective_world,
            iteration_time=sim.makespan,
            peak_memory_bytes=memory,
            num_partitions=n,
            strategy=strategy,
            comp_utilization=sim.utilization(0),
        )
