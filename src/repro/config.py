"""Model and cluster configuration.

Mirrors the paper's Table I (notation) and Table III (MoE layer specs):

=========  =======================================
Notation   Definition
=========  =======================================
M          model dimension (``d_model``)
H          hidden dimension (``d_hidden``)
B          batch size of tokens on one device
E          total number of experts
n          number of pipeline partitions
N          number of devices (GPUs)
=========  =======================================

``MoELayerSpec`` captures the static layer shape; the runtime batch size B
is passed per call because it is dynamic in MoE training (gating sends a
varying number of tokens to each expert).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

BYTES_PER_ELEM = 4  # fp32 accounting, matching the paper's byte-free formulas x4


@dataclass(frozen=True)
class MoELayerSpec:
    """Static shape of one MoE layer (paper Table III).

    Attributes
    ----------
    d_model:
        Token embedding dimension M.
    d_hidden:
        FFN hidden dimension H (H = 4*M for the paper's models).
    num_experts:
        Total number of experts E across the cluster.
    top_k:
        Number of experts each token is routed to (paper uses k=1).
    activation:
        Expert nonlinearity between the two linear layers.
    """

    name: str
    d_model: int
    d_hidden: int
    num_experts: int = 64
    top_k: int = 1
    activation: str = "gelu"

    def __post_init__(self) -> None:
        if self.d_model <= 0 or self.d_hidden <= 0:
            raise ValueError("d_model and d_hidden must be positive")
        if self.num_experts <= 0:
            raise ValueError("num_experts must be positive")
        if not 1 <= self.top_k <= self.num_experts:
            raise ValueError("top_k must be in [1, num_experts]")
        if self.activation not in ("gelu", "relu", "identity"):
            raise ValueError(f"unknown activation {self.activation!r}")

    # -- parameter counts (used by Eq. 1 memory accounting) ---------------
    @property
    def gate_params(self) -> int:
        """Parameters of the gating network: E * M (Eq. 1 first term)."""
        return self.num_experts * self.d_model

    @property
    def expert_params(self) -> int:
        """Parameters of a single expert FFN: 2 * H * M (Eq. 1 second term)."""
        return 2 * self.d_hidden * self.d_model

    def with_(self, **kwargs) -> "MoELayerSpec":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)


# --- Table III presets ----------------------------------------------------
MOE_GPT3_S = MoELayerSpec("MoE-GPT3-S", d_model=768, d_hidden=3072, num_experts=64)
MOE_GPT3_XL = MoELayerSpec("MoE-GPT3-XL", d_model=2048, d_hidden=8192, num_experts=64)
MOE_BERT_L = MoELayerSpec("MoE-BERT-L", d_model=1024, d_hidden=4096, num_experts=64)

PRESETS: dict[str, MoELayerSpec] = {
    "GPT-S": MOE_GPT3_S,
    "GPT-XL": MOE_GPT3_XL,
    "BERT-L": MOE_BERT_L,
    "MoE-GPT3-S": MOE_GPT3_S,
    "MoE-GPT3-XL": MOE_GPT3_XL,
    "MoE-BERT-L": MOE_BERT_L,
}


def get_preset(name: str) -> MoELayerSpec:
    """Look up a Table III preset by short or full name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown model preset {name!r}; available: {sorted(set(PRESETS))}"
        ) from None


@dataclass(frozen=True)
class PipelineConfig:
    """Runtime knobs of the MPipeMoE layer (the paper's Python API flags).

    ``pipeline=True, memory_reuse=True`` corresponds to the snippet in
    Sec. IV-C.  ``num_partitions=None`` enables the adaptive granularity
    search (Algorithm 1); a concrete integer pins n (PipeMoE(n=...) in the
    evaluation).  ``strategy=None`` enables the Eq. 10 performance-model
    selector; a concrete name in {"none","S1","S2","S3","S4"} pins it.
    """

    pipeline: bool = True
    memory_reuse: bool = True
    num_partitions: int | None = None
    strategy: str | None = None
    candidate_partitions: tuple[int, ...] = (1, 2, 4, 8, 16)

    def __post_init__(self) -> None:
        if self.num_partitions is not None and self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.strategy is not None and self.strategy not in (
            "none",
            "S1",
            "S2",
            "S3",
            "S4",
        ):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if any(c < 1 for c in self.candidate_partitions):
            raise ValueError("candidate partitions must be >= 1")


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster shape used by the timing layer.

    Defaults reproduce the paper's testbed: 8 DGX A100 nodes, 8 GPUs each,
    NVLink gen3 within a node and 200 Gbps HDR InfiniBand between nodes.
    """

    num_nodes: int = 8
    gpus_per_node: int = 8
    # A100 SXM 40GB characteristics
    gpu_memory_bytes: int = 40 * 1024**3
    gemm_tflops: float = 312.0  # bf16/fp16 tensor core peak
    gemm_efficiency: float = 0.45  # achievable fraction on MoE-sized GEMMs
    nvlink_gbps: float = 600.0  # GB/s unidirectional per GPU (NVLink3 aggregate)
    ib_gbitps: float = 200.0  # HDR InfiniBand per NIC, Gbit/s
    # DGX A100 carries 8 HDR NICs — the paper's "1,600 Gbps InfiniBand
    # network with adaptive routing" across machines (Sec. V-A1).
    ib_nics_per_node: int = 8
    pcie_gbps: float = 32.0  # PCIe gen4 x16 per GPU, for CPU offload, GB/s
    # Achieved fraction of line rate for fused NCCL All-to-All: many
    # small peer messages and fabric congestion keep the collective well
    # below wire speed, especially across nodes.  These factors are what
    # make 64-GPU MoE training communication-bound (Fig. 13).
    nccl_efficiency_intra: float = 0.6
    nccl_efficiency_inter: float = 0.35

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("cluster must have at least one node and one GPU")

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def node_ib_gbitps(self) -> float:
        """Aggregate InfiniBand rate out of one node (all NICs)."""
        return self.ib_gbitps * self.ib_nics_per_node

    def with_world_size(self, world_size: int) -> "ClusterSpec":
        """Resize the cluster keeping per-node GPU count when divisible."""
        if world_size <= self.gpus_per_node:
            return replace(self, num_nodes=1, gpus_per_node=world_size)
        if world_size % self.gpus_per_node:
            raise ValueError(
                f"world_size {world_size} not a multiple of gpus_per_node "
                f"{self.gpus_per_node}"
            )
        return replace(self, num_nodes=world_size // self.gpus_per_node)


DGX_A100_CLUSTER = ClusterSpec()
