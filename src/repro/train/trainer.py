"""End-to-end training loop over the MoE layer.

Runs real numpy forward/backward through the (optionally pipelined,
memory-reused) layer, an MSE regression loss plus the Switch auxiliary
loss, and an optimizer step.  The loss history is what the correctness
tests use to show that pipelining / memory reuse leave training
*dynamics* untouched, not just single-step outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moe_layer import MoELayer
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.train.data import SyntheticTokenDataset
from repro.train.optimizer import Adam, Optimizer


@dataclass
class TrainStepResult:
    step: int
    loss: float
    aux_loss: float
    num_partitions: int
    strategy: str
    dropped_tokens: int


class Trainer:
    """Synchronous multi-rank trainer for one MoE layer."""

    def __init__(
        self,
        layer: MoELayer,
        dataset: SyntheticTokenDataset,
        optimizer: Optimizer | None = None,
        aux_weight: float = 0.01,
    ) -> None:
        if dataset.world_size != layer.world_size:
            raise ValueError(
                f"dataset world {dataset.world_size} != layer world {layer.world_size}"
            )
        if dataset.d_model != layer.spec.d_model:
            raise ValueError("dataset d_model must match the layer")
        self.layer = layer
        self.dataset = dataset
        self.optimizer = optimizer or Adam(layer.parameters())
        self.aux_weight = aux_weight
        self.history: list[TrainStepResult] = []

    def loss_fn(self, outputs: list[Tensor], targets: list[np.ndarray]) -> Tensor:
        """Mean-squared error averaged over ranks and tokens."""
        total = None
        for out, tgt in zip(outputs, targets):
            diff = out - Tensor(tgt)
            term = F.mean(F.mul(diff, diff))
            total = term if total is None else total + term
        return total * (1.0 / len(outputs))

    def step(self, step_idx: int) -> TrainStepResult:
        xs = [Tensor(x, requires_grad=False) for x in self.dataset.batches(step_idx)]
        targets = self.dataset.targets(step_idx)

        self.optimizer.zero_grad()
        moe_out = self.layer.forward(xs)
        loss = self.loss_fn(moe_out.outputs, targets)
        total = loss + moe_out.aux_loss * self.aux_weight
        total.backward()
        self.optimizer.step()

        result = TrainStepResult(
            step=step_idx,
            loss=loss.item(),
            aux_loss=moe_out.aux_loss.item(),
            num_partitions=moe_out.num_partitions,
            strategy=moe_out.strategy,
            dropped_tokens=moe_out.dropped_tokens,
        )
        self.history.append(result)
        return result

    def train(self, num_steps: int) -> list[TrainStepResult]:
        return [self.step(i) for i in range(num_steps)]
