"""Synthetic token streams.

The paper trains on "a dummy dataset by generating random tokens"
(Sec. V-A2) because only the MoE layer's systems behaviour matters.
:class:`SyntheticTokenDataset` yields per-rank batches of embeddings and
regression targets; batch sizes can follow a schedule to exercise the
dynamic-B behaviour Algorithm 1 exists for (Sec. III-C cites Tutel on
dynamic batch sizes).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.utils.seeding import derive_seed, seeded_rng


class SyntheticTokenDataset:
    """Deterministic random token batches for every rank."""

    def __init__(
        self,
        d_model: int,
        world_size: int,
        batch: int | Sequence[int] = 256,
        scale: float = 1.0,
        seed: int = 0,
        fixed: bool = False,
        dtype=np.float64,
    ) -> None:
        """``fixed=True`` repeats step 0's data every step — a single
        batch to overfit, used by convergence tests."""
        if d_model < 1 or world_size < 1:
            raise ValueError("d_model and world_size must be >= 1")
        self.fixed = fixed
        self.d_model = d_model
        self.world_size = world_size
        self.batch_schedule = (
            [int(batch)] if isinstance(batch, (int, np.integer)) else [int(b) for b in batch]
        )
        if any(b < 1 for b in self.batch_schedule):
            raise ValueError("batch sizes must be >= 1")
        self.scale = scale
        self.seed = seed
        self.dtype = dtype

    def batch_size(self, step: int) -> int:
        return self.batch_schedule[step % len(self.batch_schedule)]

    def batches(self, step: int) -> list[np.ndarray]:
        """Per-rank input embeddings for one step."""
        b = self.batch_size(step)
        if self.fixed:
            step = 0
        return [
            seeded_rng(derive_seed(self.seed, "x", step, r))
            .standard_normal((b, self.d_model))
            .astype(self.dtype)
            * self.scale
            for r in range(self.world_size)
        ]

    def targets(self, step: int) -> list[np.ndarray]:
        """Per-rank regression targets (same shape as the inputs)."""
        b = self.batch_size(step)
        if self.fixed:
            step = 0
        return [
            seeded_rng(derive_seed(self.seed, "y", step, r))
            .standard_normal((b, self.d_model))
            .astype(self.dtype)
            * self.scale
            for r in range(self.world_size)
        ]

    def __iter__(self) -> Iterator[tuple[list[np.ndarray], list[np.ndarray]]]:
        step = 0
        while True:
            yield self.batches(step), self.targets(step)
            step += 1
