"""Optimizers over :class:`repro.tensor.Tensor` parameters.

Adam keeps two extra state tensors (momentum and variance) per
parameter, which together with the parameter and its gradient is the
"4x parameters" model-state accounting of Eq. 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.tensor import Tensor


class Optimizer:
    """Base: holds parameters, counts state bytes (for Eq. 1 validation)."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: list[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        for p in self.params:
            if not p.requires_grad:
                raise ValueError("all optimized parameters must require grad")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_elems_per_param_elem(self) -> int:
        """Optimizer state elements per parameter element (Adam: 2)."""
        raise NotImplementedError

    def model_state_elems(self) -> int:
        """Total elements of params + grads + optimizer state."""
        n = sum(p.size for p in self.params)
        return n * (2 + self.state_elems_per_param_elem())


class SGD(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(
        self, params: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = (
            [np.zeros_like(p.data) for p in self.params] if momentum else None
        )

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            update = p.grad
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + update
                update = self._velocity[i]
            p.data -= self.lr * update

    def state_elems_per_param_elem(self) -> int:
        return 1 if self.momentum else 0


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction — the paper's optimizer."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0 or eps <= 0:
            raise ValueError("lr and eps must be positive")
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            self.m[i] = self.beta1 * self.m[i] + (1 - self.beta1) * g
            self.v[i] = self.beta2 * self.v[i] + (1 - self.beta2) * g * g
            m_hat = self.m[i] / b1t
            v_hat = self.v[i] / b2t
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_elems_per_param_elem(self) -> int:
        return 2  # momentum + variance (Eq. 1's 4x with param + grad)
