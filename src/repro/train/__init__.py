"""Training substrate: optimizers (Adam is the paper's default,
Sec. V-A), synthetic token data ("We create a dummy dataset by
generating random tokens"), and a multi-rank training loop over the
MoE layer.
"""

from repro.train.optimizer import Adam, SGD, Optimizer
from repro.train.data import SyntheticTokenDataset
from repro.train.trainer import Trainer, TrainStepResult

__all__ = [
    "Adam",
    "SGD",
    "Optimizer",
    "SyntheticTokenDataset",
    "Trainer",
    "TrainStepResult",
]
