"""Analytic timing model for collectives on the simulated cluster.

Prices the two All-to-All flavours the paper contrasts (Fig. 5):

* **fused NCCL All-to-All** (MPipeMoE, split-by-B): one collective per
  micro-batch; per-GPU cross traffic is ``(N-1)/N`` of its volume at the
  topology's effective All-to-All bandwidth, plus a single launch/fabric
  latency;
* **point-to-point decomposition** (FasterMoE, split-by-N): each
  partition becomes W-1 pairwise sends; NCCL's fusion is lost, so every
  pair pays its own latency term and the slowest pair (the lowest
  bandwidth path — inter-node IB) gates the stage, modelling the
  heterogeneous-bandwidth straggler effect the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import ClusterTopology

# Fixed startup cost of one NCCL collective / p2p kernel: launch plus
# fabric rendezvous.  HDR IB + NVLink clusters measure 15-30 us.
NCCL_LATENCY = 20e-6
P2P_LATENCY = 12e-6

#: Slowdown of the decomposed point-to-point schedule from stragglers:
#: synchronous pairwise exchanges gate on the slowest path, and losing
#: NCCL means losing multi-NIC adaptive routing (paper Sec. III-B).
STRAGGLER_FACTOR = 1.5


@dataclass(frozen=True)
class NcclCostModel:
    """Collective timing against a :class:`ClusterTopology`.

    ``bandwidth_scale`` is a uniform derate on every effective link
    rate (1.0 = nominal) — the what-if knob for collective-level
    degradation that is not tied to one physical link.  Structural
    per-link skew (a degraded NVLink or IB uplink) belongs on the
    topology itself via
    :class:`~repro.hardware.topology.LinkOverrides`, which these
    queries follow automatically.
    """

    topology: ClusterTopology
    world_size: int | None = None  # defaults to the full cluster
    bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        w = self.effective_world
        if w < 1:
            raise ValueError("world_size must be >= 1")
        if self.bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")

    def _collective_bandwidth(
        self, w: int, traffic: tuple[float, ...] | None = None
    ) -> float:
        """Effective per-GPU collective rate, overrides and derate applied."""
        if traffic is None:
            bw = self.topology.alltoall_bandwidth(w)
        else:
            bw = self.topology.alltoall_bandwidth(w, traffic=traffic)
        if self.bandwidth_scale != 1.0:
            bw *= self.bandwidth_scale
        return bw

    def collective_bandwidth(
        self,
        world_size: int | None = None,
        traffic: tuple[float, ...] | None = None,
    ) -> float:
        """Public view of the effective collective bandwidth (bytes/s).

        Batched evaluation (``repro.perfmodel.batcheval``) prices the
        latency/bandwidth split of :meth:`alltoall_time` and
        :meth:`decomposed_alltoall_time` as array math and needs the
        same per-GPU rate those methods use internally.  ``traffic`` is
        the placement-dependent per-rank load view (see
        :meth:`ClusterTopology.alltoall_bandwidth`).
        """
        return self._collective_bandwidth(
            self.effective_world if world_size is None else world_size,
            traffic=traffic,
        )

    @property
    def effective_world(self) -> int:
        return (
            self.world_size
            if self.world_size is not None
            else self.topology.spec.world_size
        )

    # -- fused collectives ------------------------------------------------------
    def alltoall_time(
        self,
        bytes_per_rank: float,
        traffic: tuple[float, ...] | None = None,
    ) -> float:
        """Fused NCCL All-to-All moving ``bytes_per_rank`` out of each GPU.

        ``bytes_per_rank`` is the busiest rank's volume; ``traffic``
        (optional per-rank relative loads) lets a placement-aware caller
        price degraded links against the traffic they actually carry
        instead of gating the collective on the slowest member.
        """
        if bytes_per_rank < 0:
            raise ValueError("bytes_per_rank must be non-negative")
        w = self.effective_world
        if w == 1:
            return 0.0
        cross = bytes_per_rank * (w - 1) / w
        bw = self._collective_bandwidth(w, traffic=traffic)
        return NCCL_LATENCY + cross / bw

    def allreduce_time(self, nbytes: float) -> float:
        """Ring all-reduce: 2(W-1)/W of the volume over the slowest link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        w = self.effective_world
        if w == 1:
            return 0.0
        bw = self._collective_bandwidth(w)
        return NCCL_LATENCY + 2 * (w - 1) / w * nbytes / bw

    def allgather_time(self, nbytes_per_rank: float) -> float:
        """Ring all-gather of one rank's ``nbytes_per_rank`` to all ranks."""
        w = self.effective_world
        if w == 1:
            return 0.0
        bw = self._collective_bandwidth(w)
        return NCCL_LATENCY + (w - 1) * nbytes_per_rank / bw

    # -- point-to-point decomposition (FasterMoE fashion) -------------------------
    def p2p_time(self, nbytes: float, src: int, dst: int) -> float:
        """Single pairwise transfer between two global ranks."""
        if src == dst:
            return 0.0
        bw = self.topology.p2p_bandwidth(src, dst)
        if self.bandwidth_scale != 1.0:
            bw *= self.bandwidth_scale
        return P2P_LATENCY + nbytes / bw

    def decomposed_alltoall_time(
        self,
        bytes_per_rank: float,
        traffic: tuple[float, ...] | None = None,
    ) -> float:
        """All-to-All realised as W-1 pairwise exchanges per GPU.

        The same cross-node volume as the fused collective moves, but:
        every pair pays its own launch latency (W-1 of them instead of
        one), and the synchronous pairwise schedule gates on the slowest
        path without NCCL's multi-NIC adaptive routing — modeled as the
        fused bandwidth divided by :data:`STRAGGLER_FACTOR`.  This is
        the Fig. 5(a) penalty: "infeasible to take advantage of
        optimizations offered by NCCL" plus "the synchronization
        procedure causes a waste of resources".
        """
        if bytes_per_rank < 0:
            raise ValueError("bytes_per_rank must be non-negative")
        w = self.effective_world
        if w == 1:
            return 0.0
        cross = bytes_per_rank * (w - 1) / w
        bw = self._collective_bandwidth(w, traffic=traffic) / STRAGGLER_FACTOR
        return (w - 1) * P2P_LATENCY + cross / bw
