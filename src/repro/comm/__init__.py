"""Communication substrate.

The functional half (:mod:`repro.comm.group`, :mod:`repro.comm.collectives`)
implements NCCL-style collectives over in-process ranks: every rank's
buffer is a numpy array living in the same interpreter, and a collective
is a deterministic permutation/reduction over the per-rank list — the
mpi4py buffer-protocol idiom without needing an MPI launcher.

The timing half (:mod:`repro.comm.cost`) prices those collectives on the
simulated cluster topology, including the degraded point-to-point
decomposition FasterMoE uses (paper Fig. 5a discussion).
"""

from repro.comm.group import ProcessGroup
from repro.comm.collectives import (
    all_to_all,
    all_to_all_single,
    all_gather,
    all_reduce,
    reduce_scatter,
    broadcast,
)
from repro.comm.cost import NcclCostModel

__all__ = [
    "ProcessGroup",
    "all_to_all",
    "all_to_all_single",
    "all_gather",
    "all_reduce",
    "reduce_scatter",
    "broadcast",
    "NcclCostModel",
]
