"""In-process rank group.

A :class:`ProcessGroup` stands in for ``torch.distributed``'s default
group: it fixes the world size and offers per-rank utilities.  All ranks
live in one interpreter, so "communication" is array exchange between
slots of per-rank lists — bitwise-deterministic, which is exactly what
the correctness tests need.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.utils.seeding import derive_seed, seeded_rng

T = TypeVar("T")


class ProcessGroup:
    """A fixed-size group of simulated ranks."""

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size

    def ranks(self) -> range:
        return range(self.world_size)

    def rank_rng(self, base_seed: int, rank: int) -> np.random.Generator:
        """Independent generator for one rank (for per-rank weights/data)."""
        self._check_rank(rank)
        return seeded_rng(derive_seed(base_seed, "rank", rank))

    def validate_per_rank(self, items: Sequence[T], what: str = "buffers") -> None:
        """Assert a per-rank list has exactly one entry per rank."""
        if len(items) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} {what} (one per rank), got {len(items)}"
            )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range [0, {self.world_size})")

    def __repr__(self) -> str:
        return f"ProcessGroup(world_size={self.world_size})"
