"""Functional NCCL-style collectives over per-rank numpy buffers.

Every function takes ``inputs`` as a list with one array per rank (the
in-process analogue of each rank calling the collective with its local
buffer) and returns the per-rank outputs.  Shapes follow
``torch.distributed`` conventions:

* ``all_to_all_single``: rank r's input of shape ``(W, chunk, ...)``
  scatters row i to rank i; output row i came from rank i.
* ``all_gather``: every rank receives the stacked inputs.
* ``all_reduce``: element-wise sum (default) replicated to all ranks.

All outputs are fresh arrays (no aliasing with inputs) so callers can
mutate them freely — mirroring NCCL's separate send/recv buffers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.comm.group import ProcessGroup


def _check_same_shape(inputs: Sequence[np.ndarray]) -> None:
    first = inputs[0].shape
    for i, arr in enumerate(inputs):
        if arr.shape != first:
            raise ValueError(
                f"collective requires equal shapes, rank 0 has {first} but "
                f"rank {i} has {arr.shape}"
            )


def all_to_all_single(
    group: ProcessGroup, inputs: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Symmetric All-to-All: transpose the (src, dst) block matrix.

    ``inputs[r]`` has shape ``(W, chunk, ...)``; output[r][i] ==
    inputs[i][r].  This is the dispatch/combine primitive of expert
    parallelism (paper Fig. 1): applied twice it is the identity.
    """
    group.validate_per_rank(inputs)
    _check_same_shape(inputs)
    w = group.world_size
    if inputs[0].shape[0] != w:
        raise ValueError(
            f"all_to_all_single needs leading dim == world_size ({w}), "
            f"got {inputs[0].shape[0]}"
        )
    return [
        np.stack([inputs[src][dst] for src in range(w)], axis=0)
        for dst in range(w)
    ]


def all_to_all(
    group: ProcessGroup, inputs: Sequence[Sequence[np.ndarray]]
) -> list[list[np.ndarray]]:
    """List-of-tensors All-to-All (possibly unequal chunk sizes).

    ``inputs[r][i]`` is the tensor rank r sends to rank i; the result
    ``outputs[r][i]`` is the tensor rank r received from rank i.  Chunks
    may have different leading dimensions — this is what real MoE routing
    produces before capacity padding.
    """
    group.validate_per_rank(inputs)
    w = group.world_size
    for r, row in enumerate(inputs):
        if len(row) != w:
            raise ValueError(f"rank {r} sends {len(row)} chunks, expected {w}")
    return [
        [np.array(inputs[src][dst], copy=True) for src in range(w)]
        for dst in range(w)
    ]


def all_gather(group: ProcessGroup, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Every rank receives ``stack(inputs)`` of shape ``(W, ...)``."""
    group.validate_per_rank(inputs)
    _check_same_shape(inputs)
    gathered = np.stack(list(inputs), axis=0)
    return [gathered.copy() for _ in group.ranks()]


def all_reduce(
    group: ProcessGroup,
    inputs: Sequence[np.ndarray],
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> list[np.ndarray]:
    """Element-wise reduction replicated to every rank (default: sum)."""
    group.validate_per_rank(inputs)
    _check_same_shape(inputs)
    acc = inputs[0].copy()
    for arr in inputs[1:]:
        acc = op(acc, arr)
    return [acc.copy() for _ in group.ranks()]


def reduce_scatter(
    group: ProcessGroup, inputs: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Sum-reduce then scatter row r to rank r.

    ``inputs[r]`` has shape ``(W, chunk, ...)``; rank r receives
    ``sum_s inputs[s][r]``.
    """
    group.validate_per_rank(inputs)
    _check_same_shape(inputs)
    w = group.world_size
    if inputs[0].shape[0] != w:
        raise ValueError("reduce_scatter needs leading dim == world_size")
    total = np.sum(np.stack(list(inputs), axis=0), axis=0)
    return [total[r].copy() for r in range(w)]


def broadcast(
    group: ProcessGroup, inputs: Sequence[np.ndarray], root: int = 0
) -> list[np.ndarray]:
    """Replicate the root rank's buffer to every rank."""
    group.validate_per_rank(inputs)
    group._check_rank(root)
    return [inputs[root].copy() for _ in group.ranks()]
