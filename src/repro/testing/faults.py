"""Deterministic fault injection for the sweep execution stack.

A :class:`FaultPlan` scripts failures against named scenarios — *fail
scenario k on its first j-1 attempts*, *hang for t seconds*, *kill the
worker process mid-shard* — plus cache-sabotage helpers (*corrupt an
entry*, *version-skew its scenario payload*).  Faults trigger inside
the resilience retry loop (:func:`repro.sweep.resilience
.run_with_policy`), so one plan reaches every backend: the serial loop,
thread and asyncio pools, and process-pool workers (which load the plan
from the :data:`FAULT_PLAN_ENV` environment variable their parent
exports via :meth:`FaultPlan.install`).

Everything is deterministic.  Attempt counters live as files under the
plan's ``state_dir`` — appended *before* a fault fires, so even a
SIGKILL'd worker leaves an accurate count — and a fault scoped
``attempts_below=j`` fires on exactly the first ``j-1`` attempts of its
scenario, every run, on every backend.

Plans only ever fire inside the resilience wrapper: a sweep with no
retry policy and ``on_error="raise"`` never consults the plan, which is
what keeps un-instrumented runs byte-identical to a world without this
module.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import signal
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

# stdlib-only event bus (see repro.obs.bus): a no-op unless a
# subscriber/collector is active, so byte-identity holds with obs off.
from repro.obs.bus import active as _obs_active
from repro.obs.bus import emit as _obs_emit
from repro.obs.bus import label_of as _label_of

#: Environment variable naming a JSON-serialized plan; worker processes
#: (which do not share the parent's module state) activate it from here.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable naming the executing worker (set by
#: ``python -m repro serve --tag`` and :class:`repro.distrib.server
#: .StudyServer`).  A :class:`Fault` with a ``worker`` field fires only
#: in processes whose tag matches — the handle for "kill worker A but
#: let worker B recover the shard" tests against a multi-host fleet.
WORKER_TAG_ENV = "REPRO_WORKER_TAG"

FAULT_KINDS = ("fail", "hang", "kill")


class FaultInjected(RuntimeError):
    """The exception a ``"fail"`` fault raises inside the objective."""


@dataclass(frozen=True)
class Fault:
    """One scripted fault.

    ``match`` maps scenario field names to required values ({} matches
    every scenario).  ``attempts_below=j`` fires the fault only while
    the scenario's attempt count is below ``j`` — i.e. on its first
    ``j-1`` attempts — modelling a flaky objective that recovers;
    ``None`` fires on every attempt (a fatal fault).

    Kinds: ``"fail"`` raises :class:`FaultInjected`; ``"hang"`` sleeps
    ``seconds`` then lets the evaluation proceed (pair with a policy
    timeout to model a hung objective); ``"kill"`` SIGKILLs the current
    process — inside a process-pool worker, the mid-shard worker death
    the backend must absorb; inside a ``repro serve`` process, the
    dead *host* the remote backend must reshard around.

    ``worker`` scopes the fault to one named worker: it fires (and
    counts attempts) only in processes whose :data:`WORKER_TAG_ENV`
    matches, so a kill aimed at server ``"a"`` cannot re-fire when the
    survivor ``"b"`` recovers the same scenario.
    """

    kind: str
    match: dict = field(default_factory=dict)
    attempts_below: int | None = None
    message: str = "injected fault"
    seconds: float = 0.0
    worker: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {FAULT_KINDS}"
            )
        if self.attempts_below is not None and self.attempts_below < 1:
            raise ValueError("attempts_below must be >= 1 (or None for always)")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")

    def matches(self, scenario) -> bool:
        if self.worker is not None:
            if os.environ.get(WORKER_TAG_ENV) != self.worker:
                return False
        sentinel = object()
        return all(
            getattr(scenario, name, sentinel) == value
            for name, value in self.match.items()
        )


class FaultPlan:
    """A deterministic set of faults plus durable attempt counters.

    ``state_dir`` holds one counter file per (fault, scenario) pair and
    the serialized plan for worker processes.  Activate in-process with
    ``with plan.active(): ...`` (serial/thread/asyncio backends) or
    cross-process with :meth:`install` / :meth:`uninstall` (exports
    :data:`FAULT_PLAN_ENV` for pool workers to pick up).
    """

    def __init__(self, faults, state_dir) -> None:
        self.faults = tuple(faults)
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    # -- (de)serialization -----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "state_dir": str(self.state_dir),
                "faults": [asdict(f) for f in self.faults],
            },
            indent=1,
            sort_keys=True,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            [Fault(**f) for f in payload.get("faults", ())],
            payload["state_dir"],
        )

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- attempt counters ------------------------------------------------------
    def _counter_path(self, tag: str) -> Path:
        digest = hashlib.sha1(tag.encode()).hexdigest()[:20]
        return self.state_dir / f"{digest}.count"

    def _bump(self, tag: str) -> int:
        """Durably count one attempt; returns the new total.

        One byte appended (and fsynced) per attempt: the count survives
        a SIGKILL landing immediately afterwards, and concurrent
        appenders from different processes never lose an increment.
        """
        path = self._counter_path(tag)
        with open(path, "ab") as fh:
            fh.write(b"x")
            fh.flush()
            os.fsync(fh.fileno())
        return path.stat().st_size

    def attempts(self, fault_index: int, scenario) -> int:
        """Attempts the plan has seen for one fault/scenario pair."""
        tag = f"{fault_index}:{scenario.key()}"
        path = self._counter_path(tag)
        return path.stat().st_size if path.is_file() else 0

    # -- injection -------------------------------------------------------------
    def maybe_inject(self, scenario) -> None:
        """Fire the first due fault for this scenario attempt, if any.

        Called by the resilience retry loop at the top of every attempt.
        Matching faults count the attempt even when scoped out by
        ``attempts_below`` — that is what makes "fail the first j-1
        attempts" line up with the runner's own attempt numbering.
        """
        for index, fault in enumerate(self.faults):
            if not fault.matches(scenario):
                continue
            seen = self._bump(f"{index}:{scenario.key()}")
            if fault.attempts_below is not None and seen >= fault.attempts_below:
                continue
            if _obs_active():
                _obs_emit(
                    "fault.injected",
                    kind=fault.kind,
                    label=_label_of(scenario),
                    attempt=seen,
                )
            if fault.kind == "fail":
                raise FaultInjected(fault.message)
            if fault.kind == "hang":
                time.sleep(fault.seconds)
            elif fault.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)

    # -- cache sabotage --------------------------------------------------------
    @staticmethod
    def corrupt_cache_entry(path) -> None:
        """Truncate a cache entry into undecodable garbage in place."""
        Path(path).write_text('{"values": garbage')

    @staticmethod
    def skew_cache_entry(path) -> None:
        """Version-skew a cache entry: its scenario payload stops
        round-tripping the current :class:`~repro.sweep.grid.Scenario`
        fields (as if written by a different library version)."""
        payload = json.loads(Path(path).read_text())
        scenario = dict(payload.get("scenario") or {})
        scenario["retired_axis"] = True  # a field no current Scenario has
        payload["scenario"] = scenario
        Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))

    # -- activation ------------------------------------------------------------
    @contextlib.contextmanager
    def active(self):
        """In-process activation (serial / thread / asyncio backends)."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    def install(self) -> str:
        """Cross-process activation: persist the plan and export
        :data:`FAULT_PLAN_ENV` so pool workers (which inherit the
        environment) load it.  Returns the plan file path."""
        path = self.state_dir / "plan.json"
        path.write_text(self.to_json())
        os.environ[FAULT_PLAN_ENV] = str(path)
        _LOADED.pop(str(path), None)  # a re-written plan must reload
        return str(path)

    def uninstall(self) -> None:
        os.environ.pop(FAULT_PLAN_ENV, None)
        _LOADED.clear()


#: The in-process plan set by :meth:`FaultPlan.active`.
_ACTIVE: FaultPlan | None = None

#: Plans loaded from :data:`FAULT_PLAN_ENV`, cached per path.
_LOADED: dict[str, FaultPlan] = {}


def active_plan() -> FaultPlan | None:
    """The plan the resilience loop should consult, or None.

    In-process activation wins; otherwise :data:`FAULT_PLAN_ENV` names a
    serialized plan (the worker-process and CLI path).  A plan that
    fails to load raises — silently dropping scripted faults would turn
    a red resilience test green.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    path = os.environ.get(FAULT_PLAN_ENV)
    if not path:
        return None
    plan = _LOADED.get(path)
    if plan is None:
        plan = _LOADED[path] = FaultPlan.load(path)
    return plan
