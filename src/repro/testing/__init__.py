"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the resilience suite (and the CI fault smoke) drives sweeps
through: scripted scenario failures, hangs, worker kills, and cache
corruption, all reproducible run to run.
"""

from repro.testing.faults import (
    FAULT_PLAN_ENV,
    Fault,
    FaultInjected,
    FaultPlan,
    active_plan,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "active_plan",
]
