"""Top-k gating network.

The gate is a single linear layer over the token embedding producing a
logit per expert (paper Sec. IV-A: "The gating network routes tokens to
experts based on top-k algorithm. In this paper, we set k to 1").  We
implement general k but default to 1; the paper's observation that
"increasing k is an equivalence of increasing B" is validated by a test.

Routing decisions (argmax indices) are non-differentiable data; gradient
flows through the gate *probabilities* used to scale combined outputs,
plus the Switch-Transformer auxiliary load-balancing loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.utils.seeding import seeded_rng


@dataclass
class GateDecision:
    """Routing outcome for one rank's batch of B tokens.

    Attributes
    ----------
    expert_indices:
        ``(B, k)`` int array of chosen expert ids (global expert space).
    gate_probs:
        ``(B, k)`` Tensor of the softmax probabilities of the chosen
        experts — differentiable, used to weight the combine.
    aux_loss:
        Scalar Tensor: Switch load-balancing loss ``E * sum(f_e * p_e)``.
    """

    expert_indices: np.ndarray
    gate_probs: Tensor
    aux_loss: Tensor


class TopKGate:
    """Linear gating network ``logits = x @ Wg`` with top-k selection."""

    def __init__(
        self,
        d_model: int,
        num_experts: int,
        top_k: int = 1,
        seed: int | None = None,
        dtype=np.float64,
    ) -> None:
        if not 1 <= top_k <= num_experts:
            raise ValueError("top_k must be in [1, num_experts]")
        self.d_model = d_model
        self.num_experts = num_experts
        self.top_k = top_k
        rng = seeded_rng(seed)
        self.wg = Tensor(
            rng.standard_normal((d_model, num_experts)).astype(dtype)
            / np.sqrt(d_model),
            requires_grad=True,
            name="wg",
        )

    def parameters(self) -> list[Tensor]:
        return [self.wg]

    @property
    def num_params(self) -> int:
        return self.wg.size

    def zero_grad(self) -> None:
        self.wg.zero_grad()

    def forward(self, x: Tensor) -> GateDecision:
        """Route a batch ``x`` of shape ``(B, M)``."""
        if x.ndim != 2 or x.shape[1] != self.d_model:
            raise ValueError(f"expected (B, {self.d_model}) input, got {x.shape}")
        b = x.shape[0]
        logits = F.matmul(x, self.wg)
        probs = F.softmax(logits, axis=-1)

        # Top-k selection on data (no gradient through argpartition).
        raw = probs.data
        if self.top_k == 1:
            idx = raw.argmax(axis=-1)[:, None]
        else:
            part = np.argpartition(raw, -self.top_k, axis=-1)[:, -self.top_k :]
            order = np.argsort(
                np.take_along_axis(raw, part, axis=-1), axis=-1
            )[:, ::-1]
            idx = np.take_along_axis(part, order, axis=-1)

        rows = np.repeat(np.arange(b), self.top_k)
        flat = (rows * self.num_experts + idx.reshape(-1)).astype(np.intp)
        chosen = F.take_rows(F.reshape(probs, (b * self.num_experts,)), flat)
        gate_probs = F.reshape(chosen, (b, self.top_k))

        aux = self._aux_loss(probs, idx)
        return GateDecision(expert_indices=idx, gate_probs=gate_probs, aux_loss=aux)

    __call__ = forward

    def _aux_loss(self, probs: Tensor, idx: np.ndarray) -> Tensor:
        """Switch aux loss: E * sum_e f_e * P_e.

        ``f_e`` is the fraction of tokens whose *first* choice is expert e
        (data, no grad); ``P_e`` the mean gate probability (differentiable).
        """
        b = probs.shape[0]
        counts = np.bincount(idx[:, 0], minlength=self.num_experts).astype(
            probs.data.dtype
        )
        f = Tensor(counts / b)
        p_mean = F.mean(probs, axis=0)
        return F.sum_(F.mul(f, p_mean)) * float(self.num_experts)
