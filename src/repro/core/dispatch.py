"""Capacity-based token dispatch and combine.

Follows the GShard/Switch expert-parallel layout the paper builds on
(Fig. 1): each rank packs its B local tokens into a dispatch buffer of
shape ``(E, C, M)`` — ``C`` slots per (source rank, expert) — which the
All-to-All then exchanges expert-major, so the rank hosting expert ``e``
receives ``(W, C, M)`` rows for it.

Tokens beyond an expert's capacity are *dropped* (their combined output
is zero), which is how Switch keeps all collective buffers equal-shaped;
with ``capacity_factor >= 1`` and balanced routing nothing drops.

Slot assignment is fully vectorised: a stable argsort groups token
choices by expert, and positions within each group come from a
cumulative count — no Python loop over tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gating import GateDecision
from repro.tensor import Tensor
from repro.tensor import functional as F


def capacity_for(batch: int, num_experts: int, top_k: int, capacity_factor: float) -> int:
    """Slots per (source rank, expert): ceil(cf * B * k / E), at least 1.

    Delegates to :func:`repro.perfmodel.workload.expert_capacity` — the
    one canonical capacity formula, shared with the pricing layers (the
    sweep runner used to apply ``ceil(B * cf)`` to the whole batch,
    contradicting this per-expert definition).  Imported lazily: the
    perfmodel package pulls in the timing stack, which must not load at
    ``repro.core`` import time.
    """
    from repro.perfmodel.workload import expert_capacity

    return expert_capacity(batch, num_experts, top_k, capacity_factor)


def positions_within_expert(flat_experts: np.ndarray, num_experts: int) -> np.ndarray:
    """Arrival position of each routing choice within its expert's queue.

    Stable: earlier tokens claim earlier slots, matching the sequential
    semantics of Switch's cumsum-based implementation.
    """
    order = np.argsort(flat_experts, kind="stable")
    sorted_experts = flat_experts[order]
    # Index of each element within its equal-expert run.
    run_starts = np.flatnonzero(
        np.concatenate(([True], sorted_experts[1:] != sorted_experts[:-1]))
    )
    within = np.arange(flat_experts.size)
    within -= np.repeat(run_starts, np.diff(np.append(run_starts, flat_experts.size)))
    positions = np.empty_like(within)
    positions[order] = within
    return positions


@dataclass
class DispatchPlan:
    """Routing geometry for one rank's batch (data only, no tensors).

    ``slots``/``token_ids`` enumerate the *kept* routing choices:
    ``slots[i]`` is the flat row in the ``(E*C, M)`` dispatch buffer
    that token ``token_ids[i]``'s choice ``choice_ids[i]`` occupies.
    """

    batch: int
    num_experts: int
    capacity: int
    token_ids: np.ndarray  # (n_kept,)
    choice_ids: np.ndarray  # (n_kept,) index into the k choices
    slots: np.ndarray  # (n_kept,)
    dropped: int

    @property
    def buffer_rows(self) -> int:
        return self.num_experts * self.capacity

    @property
    def keep_fraction(self) -> float:
        total = self.token_ids.size + self.dropped
        return self.token_ids.size / total if total else 1.0


def plan_dispatch(
    decision: GateDecision,
    num_experts: int,
    capacity: int,
) -> DispatchPlan:
    """Assign dispatch-buffer slots to the routing choices of one batch."""
    idx = decision.expert_indices
    b, k = idx.shape
    flat_experts = idx.reshape(-1)
    pos = positions_within_expert(flat_experts, num_experts)
    kept = pos < capacity
    token_ids = np.repeat(np.arange(b), k)[kept]
    choice_ids = np.tile(np.arange(k), b)[kept]
    slots = (flat_experts[kept] * capacity + pos[kept]).astype(np.intp)
    return DispatchPlan(
        batch=b,
        num_experts=num_experts,
        capacity=capacity,
        token_ids=token_ids.astype(np.intp),
        choice_ids=choice_ids.astype(np.intp),
        slots=slots,
        dropped=int((~kept).sum()),
    )


def dispatch_tokens(x: Tensor, plan: DispatchPlan) -> Tensor:
    """Pack tokens into the flat ``(E*C, M)`` dispatch buffer (autograd).

    Unfilled slots stay zero — they are padding that real systems also
    ship through the All-to-All.
    """
    if x.shape[0] != plan.batch:
        raise ValueError(f"x has {x.shape[0]} tokens, plan expects {plan.batch}")
    rows = F.take_rows(x, plan.token_ids)
    return F.scatter_rows(rows, plan.slots, plan.buffer_rows)


def combine_tokens(received: Tensor, plan: DispatchPlan, decision: GateDecision) -> Tensor:
    """Unpack expert outputs back to token order, gate-prob weighted.

    ``received`` is the flat ``(E*C, M)`` buffer after the return
    All-to-All.  Dropped tokens produce zero rows (Switch semantics).
    Gradients flow to ``received`` and to the gate probabilities.
    """
    if received.shape[0] != plan.buffer_rows:
        raise ValueError(
            f"received has {received.shape[0]} rows, plan expects {plan.buffer_rows}"
        )
    rows = F.take_rows(received, plan.slots)
    b, k = plan.batch, decision.gate_probs.shape[1]
    flat_probs = F.reshape(decision.gate_probs, (b * k,))
    kept_flat = (plan.token_ids * k + plan.choice_ids).astype(np.intp)
    probs_kept = F.take_rows(flat_probs, kept_flat)
    return F.scatter_rows(rows, plan.token_ids, plan.batch, weights=probs_kept)
