"""The MPipeMoE layer — public API of the library.

Mirrors the paper's usage snippet (Sec. IV-C)::

    import repro
    layer = repro.MoELayer(d_model=1024, d_hidden=4096, top_k=1,
                           num_experts=64, world_size=8,
                           pipeline=True, memory_reuse=True)
    out = layer.forward([x_rank0, x_rank1, ...])   # one Tensor per rank

Execution paths:

* ``pipeline=False`` — the plain expert-parallel reference (FastMoE
  semantics): one fused All-to-All each way, pure autograd.
* ``pipeline=True, memory_reuse=False`` — PipeMoE: micro-batch
  pipelining at granularity n (adaptive via Algorithm 1 when
  ``num_partitions=None``); activations kept (strategy "none").
* ``pipeline=True, memory_reuse=True`` — MPipeMoE: shared ring buffers
  plus a restore strategy (adaptive via the Eq. 10 selector when
  ``strategy=None``).

All ranks live in-process: ``forward`` takes and returns one tensor per
rank, and expert parallelism (Fig. 1) is realised by the stacked
All-to-All exchanges inside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.comm.cost import NcclCostModel
from repro.config import ClusterSpec, DGX_A100_CLUSTER, MoELayerSpec
from repro.core.dispatch import (
    DispatchPlan,
    capacity_for,
    combine_tokens,
    dispatch_tokens,
    plan_dispatch,
)
from repro.core.experts import ExpertFFN
from repro.core.gating import GateDecision, TopKGate
from repro.hardware.device import A100_SXM_40GB, DeviceSpec
from repro.hardware.topology import ClusterTopology
from repro.memory.footprint import FootprintModel
from repro.memory.host_pool import HostBufferPool
from repro.memory.strategies import Strategy, get_strategy
from repro.perfmodel.cost import HardwareRates, PerfModel
from repro.perfmodel.selector import StrategySelector
from repro.perfmodel.workload import WorkloadSpec
from repro.pipeline.executor import PipelinedMoEMiddle, middle_autograd
from repro.pipeline.granularity import GranularitySearcher
from repro.pipeline.partition import pad_capacity
from repro.pipeline.schedule import MoEStageCosts, build_timeline
from repro.sim.engine import SimEngine
from repro.sim.memory_allocator import CachingAllocator
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.utils.seeding import derive_seed


@dataclass
class MoEOutput:
    """Result of one layer call."""

    outputs: list[Tensor]  # one (B, M) tensor per rank
    aux_loss: Tensor  # mean Switch load-balancing loss across ranks
    num_partitions: int
    strategy: str
    capacity: int
    dropped_tokens: int
    plans: list[DispatchPlan] = field(repr=False, default_factory=list)


class MoELayer:
    """Memory-efficient MoE layer with adaptive pipeline parallelism."""

    def __init__(
        self,
        d_model: int,
        d_hidden: int,
        num_experts: int = 64,
        top_k: int = 1,
        world_size: int = 1,
        pipeline: bool = True,
        memory_reuse: bool = True,
        num_partitions: int | None = None,
        strategy: str | None = None,
        capacity_factor: float = 1.0,
        activation: str = "gelu",
        candidate_partitions: tuple[int, ...] = (1, 2, 4, 8),
        cluster: ClusterSpec | None = None,
        device: DeviceSpec = A100_SXM_40GB,
        meter: CachingAllocator | None = None,
        seed: int = 0,
        dtype=np.float64,
    ) -> None:
        if num_experts % world_size:
            raise ValueError(
                f"num_experts ({num_experts}) must be divisible by world_size "
                f"({world_size}) for expert parallelism"
            )
        if num_partitions is not None and num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if strategy is not None:
            get_strategy(strategy)  # validate early
        self.spec = MoELayerSpec(
            name="custom",
            d_model=d_model,
            d_hidden=d_hidden,
            num_experts=num_experts,
            top_k=top_k,
            activation=activation,
        )
        self.world_size = world_size
        self.experts_per_rank = num_experts // world_size
        self.pipeline = pipeline
        self.memory_reuse = memory_reuse
        self.fixed_partitions = num_partitions
        self.fixed_strategy = strategy
        self.capacity_factor = capacity_factor
        self.candidate_partitions = tuple(sorted(set(candidate_partitions)))
        # Capacity is padded to a multiple of every granularity the layer
        # might pick, so routing (and therefore which tokens drop) is
        # *independent of n* — pipelined and sequential execution stay
        # token-for-token equivalent.
        self.capacity_multiple = math.lcm(
            *self.candidate_partitions, num_partitions or 1
        )
        self.meter = meter
        self.host_pool = HostBufferPool()
        self.dtype = dtype

        # Parameters: replicated gate + per-rank expert shards.
        self.gate = TopKGate(
            d_model, num_experts, top_k, seed=derive_seed(seed, "gate"), dtype=dtype
        )
        self.experts: list[list[ExpertFFN]] = [
            [
                ExpertFFN(
                    d_model,
                    d_hidden,
                    activation=activation,
                    seed=derive_seed(seed, "expert", r * self.experts_per_rank + e),
                    dtype=dtype,
                )
                for e in range(self.experts_per_rank)
            ]
            for r in range(world_size)
        ]

        # Timing-layer context for the adaptive components.
        if cluster is None:
            cluster = DGX_A100_CLUSTER.with_world_size(world_size)
        self.cluster = cluster
        self.device = device
        self._topology = ClusterTopology(self.cluster)
        self._comm_model = NcclCostModel(self._topology, world_size)
        self._sim = SimEngine()
        # The default WorkloadSpec inherits this layer's top_k, so the
        # adaptive components price k routed rows per token — a k=1
        # layer resolves to the raw batch bit for bit.  (The executable
        # capacity_factor stays out: the timing layer prices what a
        # granularity trial would measure, dropped tokens included.)
        self.timing_workload = WorkloadSpec()
        self.granularity_searcher = GranularitySearcher(
            evaluate=self._simulated_iteration_time,
            candidates=self.candidate_partitions,
        )
        rates = HardwareRates.from_cluster(device, self._comm_model)
        self.perf_model = PerfModel(
            self.spec, rates,
            workload=self.timing_workload, world_size=world_size,
        )
        self.strategy_selector = StrategySelector(
            self.perf_model,
            footprint=FootprintModel(
                self.spec, world_size, workload=self.timing_workload
            ),
            device_capacity=device.memory_bytes,
        )
        self.last_selection = None

    # -- parameters ---------------------------------------------------------------
    def parameters(self) -> list[Tensor]:
        params = list(self.gate.parameters())
        for row in self.experts:
            for expert in row:
                params.extend(expert.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- adaptive components ---------------------------------------------------------
    def _simulated_iteration_time(self, batch: int, n: int) -> float:
        """Trial evaluator for Algorithm 1: simulated fw+bw makespan."""
        costs = MoEStageCosts.compute(
            self.spec, batch, n, self.device, self._comm_model,
            workload=self.timing_workload,
        )
        ops = build_timeline(costs, n, strategy="none", include_backward=True)
        return self._sim.run(ops).makespan

    def configure(self, batch: int) -> tuple[int, Strategy]:
        """Resolve (n, strategy) for this batch size.

        Adaptive pieces only run when the corresponding knob is None;
        pinned values reproduce the paper's PipeMoE(n=k) / fixed-Sx
        ablations.
        """
        if not self.pipeline:
            n = 1
        elif self.fixed_partitions is not None:
            n = self.fixed_partitions
        else:
            n = self.granularity_searcher.configure(batch)

        if not self.memory_reuse or n < 2:
            strategy = get_strategy("none")
        elif self.fixed_strategy is not None:
            strategy = get_strategy(self.fixed_strategy)
        else:
            selection = self.strategy_selector.select(batch, n)
            self.last_selection = selection
            strategy = selection.strategy
        return n, strategy

    # -- forward -------------------------------------------------------------------
    def forward(self, xs: list[Tensor]) -> MoEOutput:
        """Run the MoE layer on one batch per rank.

        Every rank's input must be ``(B, d_model)`` with the same B (the
        collective buffers of expert parallelism are equal-shaped).
        """
        if len(xs) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank inputs, got {len(xs)}"
            )
        batches = {x.shape[0] for x in xs}
        if len(batches) != 1:
            raise ValueError(f"all ranks must have equal batch sizes, got {batches}")
        batch = batches.pop()
        for x in xs:
            if x.ndim != 2 or x.shape[1] != self.spec.d_model:
                raise ValueError(
                    f"inputs must be (B, {self.spec.d_model}), got {x.shape}"
                )

        n, strategy = self.configure(batch)
        capacity = pad_capacity(
            capacity_for(
                batch, self.spec.num_experts, self.spec.top_k, self.capacity_factor
            ),
            math.lcm(self.capacity_multiple, n),
        )

        # Gate + dispatch per rank.
        decisions: list[GateDecision] = []
        plans: list[DispatchPlan] = []
        buffers: list[Tensor] = []
        for x in xs:
            decision = self.gate(x)
            plan = plan_dispatch(decision, self.spec.num_experts, capacity)
            flat = dispatch_tokens(x, plan)  # (E*C, M)
            buffers.append(
                F.reshape(
                    flat,
                    (self.world_size, self.experts_per_rank, capacity, self.spec.d_model),
                )
            )
            decisions.append(decision)
            plans.append(plan)

        ti_all = F.stack(buffers, axis=0)  # (W, W, EperR, C, M)

        # Middle: S -> C -> R.
        if self.pipeline:
            engine = PipelinedMoEMiddle(
                self.experts,
                num_partitions=n,
                strategy=strategy,
                meter=self.meter,
                host_pool=self.host_pool,
            )
            to_all = middle_autograd(ti_all, engine)
            if not to_all.requires_grad:
                engine.discard_context()
        else:
            to_all = self._reference_middle(ti_all)

        # Combine per rank.
        outputs = []
        for r in range(self.world_size):
            flat = F.reshape(
                to_all[r],
                (self.spec.num_experts * capacity, self.spec.d_model),
            )
            outputs.append(combine_tokens(flat, plans[r], decisions[r]))

        aux = decisions[0].aux_loss
        for d in decisions[1:]:
            aux = aux + d.aux_loss
        aux = aux * (1.0 / self.world_size)

        return MoEOutput(
            outputs=outputs,
            aux_loss=aux,
            num_partitions=n,
            strategy=strategy.name,
            capacity=capacity,
            dropped_tokens=sum(p.dropped for p in plans),
            plans=plans,
        )

    __call__ = forward

    def _reference_middle(self, ti_all: Tensor) -> Tensor:
        """Pure-autograd S -> C -> R (no pipelining): the test oracle path."""
        w, eper = self.world_size, self.experts_per_rank
        cap, m = ti_all.shape[3], ti_all.shape[4]
        tdi_all = F.transpose(ti_all, (1, 0, 2, 3, 4))  # S: exchange src<->dst
        per_rank_out = []
        for r in range(w):
            per_expert = []
            for e in range(eper):
                x = F.reshape(tdi_all[(r, slice(None), e)], (w * cap, m))
                y = self.experts[r][e].forward(x)
                per_expert.append(F.reshape(y, (w, cap, m)))
            # (EperR, W, C, M) -> (W, EperR, C, M)
            per_rank_out.append(F.transpose(F.stack(per_expert, axis=0), (1, 0, 2, 3)))
        tdo_all = F.stack(per_rank_out, axis=0)  # [dst, src, e, c, m]
        return F.transpose(tdo_all, (1, 0, 2, 3, 4))  # R: exchange back
