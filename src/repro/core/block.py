"""MoE transformer block: pre-norm + MoE layer + residual.

The paper's MoE models replace the FFN sub-layer of a transformer block
with the MoE layer (Sec. II-A).  This module provides that host block —
``y = x + MoE(LayerNorm(x))`` per rank — so examples and tests can train
something shaped like the real workload rather than a bare layer.

Dropped tokens produce zero MoE output, so the residual path carries
them through unchanged — the standard Switch Transformer behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.core.moe_layer import MoELayer, MoEOutput
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.utils.seeding import derive_seed


class MoETransformerBlock:
    """Pre-norm residual block hosting an :class:`MoELayer`.

    The LayerNorm parameters are replicated across ranks (data-parallel,
    like the gate), so a single (gamma, beta) pair serves all ranks.
    """

    def __init__(self, moe: MoELayer, seed: int = 0, eps: float = 1e-5) -> None:
        self.moe = moe
        self.eps = eps
        d = moe.spec.d_model
        # Affine init: identity transform.
        rng_unused = derive_seed(seed, "ln")  # reserved for future non-id init
        del rng_unused
        self.gamma = Tensor(np.ones(d, dtype=np.float64), requires_grad=True,
                            name="ln.gamma")
        self.beta = Tensor(np.zeros(d, dtype=np.float64), requires_grad=True,
                           name="ln.beta")

    def parameters(self) -> list[Tensor]:
        return [self.gamma, self.beta, *self.moe.parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, xs: list[Tensor]) -> tuple[list[Tensor], MoEOutput]:
        """Per-rank ``x + MoE(LN(x))``; returns outputs and the MoE info."""
        normed = [
            F.layer_norm(x, self.gamma, self.beta, eps=self.eps) for x in xs
        ]
        moe_out = self.moe.forward(normed)
        outputs = [F.add(x, y) for x, y in zip(xs, moe_out.outputs)]
        return outputs, moe_out

    __call__ = forward
