"""The paper's primary contribution: the MPipeMoE layer.

* :mod:`repro.core.experts` — FFN expert (two linear layers), with both
  an autograd path and explicit numpy forward/backward used by the
  memory-reusing pipelined executor.
* :mod:`repro.core.gating` — top-k gating network with load-balancing
  auxiliary loss (Switch Transformer style; the paper uses k=1).
* :mod:`repro.core.dispatch` — capacity-based token routing: slot
  assignment, dispatch/combine as differentiable scatter/gather.
* :mod:`repro.core.moe_layer` — the public ``MoELayer`` mirroring the
  paper's ``pmoe.MoELayer`` API (``pipeline=True, memory_reuse=True``).
"""

from repro.core.experts import ExpertFFN
from repro.core.gating import TopKGate, GateDecision
from repro.core.dispatch import DispatchPlan, plan_dispatch, dispatch_tokens, combine_tokens
from repro.core.moe_layer import MoELayer, MoEOutput
from repro.core.block import MoETransformerBlock

__all__ = [
    "ExpertFFN",
    "TopKGate",
    "GateDecision",
    "DispatchPlan",
    "plan_dispatch",
    "dispatch_tokens",
    "combine_tokens",
    "MoELayer",
    "MoEOutput",
    "MoETransformerBlock",
]
