"""Expert feed-forward network.

An expert is the transformer FFN the paper describes (Sec. IV-A): two
linear layers with an elementwise activation between them::

    y = act(x @ W1 + b1) @ W2 + b2        x: (T, M), W1: (M, H), W2: (H, M)

Two execution paths:

* **autograd** (:meth:`ExpertFFN.forward`): builds the tape, used by the
  reference (non-reused) layer and for end-to-end training;
* **explicit** (:meth:`forward_np` / :meth:`backward_np`): plain numpy
  with the caller owning activation storage — this is what the
  memory-reusing pipelined executor drives, because strategies S1-S4
  need to drop and later *restore* ``TDI`` (the input x) and ``TM`` (the
  hidden pre-activation) rather than let a tape stash them.

``TM`` is stored as the *pre-activation* so GELU's exact gradient is
computable; re-applying the cheap elementwise activation during backward
costs a temporary, not a stashed tensor, keeping the paper's Eq. 2
accounting (one ``(B, H)`` activation per expert stage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.utils.seeding import seeded_rng

_ACT_NP = {
    "relu": lambda z: np.maximum(z, 0.0),
    "gelu": None,  # filled below
    "identity": lambda z: z,
}

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


def _gelu_np(z: np.ndarray) -> np.ndarray:
    return 0.5 * z * (1.0 + np.tanh(_SQRT_2_OVER_PI * (z + 0.044715 * z**3)))


def _gelu_grad_np(z: np.ndarray) -> np.ndarray:
    t = np.tanh(_SQRT_2_OVER_PI * (z + 0.044715 * z**3))
    d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * z**2)
    return 0.5 * (1.0 + t) + 0.5 * z * (1.0 - t**2) * d_inner


_ACT_NP["gelu"] = _gelu_np

_ACT_GRAD_NP = {
    "relu": lambda z: (z > 0).astype(z.dtype),
    "gelu": _gelu_grad_np,
    "identity": lambda z: np.ones_like(z),
}


@dataclass
class ExpertGrads:
    """Parameter gradients of one expert from one backward slice."""

    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray

    def add_(self, other: "ExpertGrads") -> None:
        self.w1 += other.w1
        self.b1 += other.b1
        self.w2 += other.w2
        self.b2 += other.b2


class ExpertFFN:
    """One expert: Linear(M->H) -> activation -> Linear(H->M)."""

    def __init__(
        self,
        d_model: int,
        d_hidden: int,
        activation: str = "gelu",
        seed: int | None = None,
        dtype=np.float64,
    ) -> None:
        if activation not in _ACT_NP:
            raise ValueError(f"unknown activation {activation!r}")
        self.d_model = d_model
        self.d_hidden = d_hidden
        self.activation = activation
        rng = seeded_rng(seed)
        scale1 = np.sqrt(2.0 / (d_model + d_hidden))
        scale2 = np.sqrt(2.0 / (d_hidden + d_model))
        self.w1 = Tensor(
            rng.standard_normal((d_model, d_hidden)).astype(dtype) * scale1,
            requires_grad=True,
            name="w1",
        )
        self.b1 = Tensor(np.zeros(d_hidden, dtype=dtype), requires_grad=True, name="b1")
        self.w2 = Tensor(
            rng.standard_normal((d_hidden, d_model)).astype(dtype) * scale2,
            requires_grad=True,
            name="w2",
        )
        self.b2 = Tensor(np.zeros(d_model, dtype=dtype), requires_grad=True, name="b2")

    # -- parameter plumbing ---------------------------------------------------
    def parameters(self) -> list[Tensor]:
        return [self.w1, self.b1, self.w2, self.b2]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- autograd path -----------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Tape-building forward for ``x`` of shape ``(T, M)``."""
        hidden = F.add(F.matmul(x, self.w1), self.b1)
        act = F.ACTIVATIONS[self.activation](hidden)
        return F.add(F.matmul(act, self.w2), self.b2)

    __call__ = forward

    # -- explicit path (memory-reuse engine) ---------------------------------------
    def forward_np(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Explicit forward returning ``(y, tm_pre)``.

        ``tm_pre`` is the hidden pre-activation (the paper's TM).  When
        ``out`` is given the result is written into it (shared-buffer
        memory reuse writes partitions into one ring buffer).
        """
        tm_pre = x @ self.w1.data + self.b1.data
        act = _ACT_NP[self.activation](tm_pre)
        y = act @ self.w2.data + self.b2.data
        if out is not None:
            out[...] = y
            y = out
        return y, tm_pre

    def recompute_tm(self, x: np.ndarray) -> np.ndarray:
        """Restore TM from TDI (strategy S3/S4 recompute path)."""
        return x @ self.w1.data + self.b1.data

    def backward_np(
        self, x: np.ndarray, tm_pre: np.ndarray, dy: np.ndarray
    ) -> tuple[np.ndarray, ExpertGrads]:
        """Explicit backward.

        Parameters are the stashed/restored activations: ``x`` (TDI) and
        ``tm_pre`` (TM), plus the upstream gradient ``dy`` (the temporary
        buffer of Sec. II-B).  Returns ``(dx, parameter grads)``.
        """
        act = _ACT_NP[self.activation](tm_pre)
        dw2 = act.T @ dy
        db2 = dy.sum(axis=0)
        dact = dy @ self.w2.data.T
        dpre = dact * _ACT_GRAD_NP[self.activation](tm_pre)
        dw1 = x.T @ dpre
        db1 = dpre.sum(axis=0)
        dx = dpre @ self.w1.data.T
        return dx, ExpertGrads(w1=dw1, b1=db1, w2=dw2, b2=db2)

    def accumulate_grads(self, grads: ExpertGrads) -> None:
        """Fold explicit-path gradients into the autograd ``.grad`` slots."""
        for param, g in (
            (self.w1, grads.w1),
            (self.b1, grads.b1),
            (self.w2, grads.w2),
            (self.b2, grads.b2),
        ):
            param.grad = g.copy() if param.grad is None else param.grad + g

    # -- cost accounting --------------------------------------------------------------
    def flops_per_token(self) -> float:
        """Forward FLOPs per token: two GEMMs of 2*M*H each."""
        return 4.0 * self.d_model * self.d_hidden
