"""Closed-form memory footprint model — paper Eq. 1-6.

All formulas count *elements*; multiply by ``bytes_per_elem`` (4 for the
fp32 accounting the paper uses) to get bytes.  Notation per Table I:
M = d_model, H = d_hidden, E = experts, B = tokens per device, n = number
of pipeline partitions.

Eq. 1   M_ms      = 4 * (E*M + 2*H*M)          model states (Adam: param,
                                                grad, momentum, variance)
Eq. 2   M_act     = 4*B*M + B*H                 TI,TDI,TDO,TO (B,M) + TM (B,H)
Eq. 3   M_buf     = B*M + B*H                   peak adjacent grad pair
Eq. 4   M^pipe_buf = M^pipe_act = 4*B*M + B*H   pipelining alone saves nothing
Eq. 5   dM_buf = dM_act = B*(2M(n-2)/n + H(n-1)/n)   reuse savings
Eq. 6   phi = (dM_act + dM_buf) / (M_ms + M^pipe_act + M^pipe_buf)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import BYTES_PER_ELEM, MoELayerSpec

if TYPE_CHECKING:
    from repro.perfmodel.workload import WorkloadSpec


def model_states_elems(spec: MoELayerSpec) -> int:
    """Eq. 1: gate (E*M) + expert (2*H*M) parameters, x4 for Adam states."""
    return 4 * (spec.gate_params + spec.expert_params)


def activations_elems(spec: MoELayerSpec, batch: int, rows: int | None = None) -> int:
    """Eq. 2: four (B, M) tensors (TI, TDI, TDO, TO) plus TM of (B, H).

    ``rows`` sizes the dispatch-side tensors (TDI, TDO, TM) when a
    routed workload inflates them beyond B (top-k fan-out, capacity
    padding, gating skew); TI and TO always hold the raw B tokens.
    ``rows=None`` (or ``rows == batch``) reproduces Eq. 2 exactly.
    """
    _check_batch(batch)
    if rows is None or rows == batch:
        return 4 * batch * spec.d_model + batch * spec.d_hidden
    return (
        2 * batch * spec.d_model
        + 2 * rows * spec.d_model
        + rows * spec.d_hidden
    )


def buffers_elems(spec: MoELayerSpec, batch: int, rows: int | None = None) -> int:
    """Eq. 3: peak temporary-buffer pair in sequential backward.

    The pair is dispatch-side (a TDO-grad and a TM-grad chunk), so
    ``rows`` scales both terms.
    """
    _check_batch(batch)
    if rows is None:
        rows = batch
    return rows * spec.d_model + rows * spec.d_hidden


def pipeline_activations_elems(
    spec: MoELayerSpec, batch: int, rows: int | None = None
) -> int:
    """Eq. 4: pipeline parallelism alone does not shrink activations."""
    return activations_elems(spec, batch, rows)


def pipeline_buffers_elems(
    spec: MoELayerSpec, batch: int, rows: int | None = None
) -> int:
    """Eq. 4: with pipelining the temp-buffer peak grows to match M_act.

    Gradient chunks of all in-flight partitions coexist, so the paper
    sets M^pipe_buf = M^pipe_act.
    """
    return activations_elems(spec, batch, rows)


def reuse_savings_elems(
    spec: MoELayerSpec, batch: int, n: int, rows: int | None = None
) -> int:
    """Eq. 5: elements saved in *each* of activations and temp buffers.

    TDI and TDO shrink from (B, M) to two (B/n, M) ring slots each; TM
    shrinks from (B, H) to one (B/n, H) slot.  Requires n >= 2 (with
    n = 1 there is nothing to share and the formula would go negative).
    All three tensors are dispatch-side, so ``rows`` replaces B whole.
    """
    _check_batch(batch)
    if n < 2:
        return 0
    if rows is None:
        rows = batch
    m, h = spec.d_model, spec.d_hidden
    return int(rows * (2 * m * (n - 2) / n + h * (n - 1) / n))


def memory_saving_ratio(spec: MoELayerSpec, batch: int, n: int) -> float:
    """Eq. 6: phi, the fraction of the pipelined footprint that reuse removes."""
    delta = reuse_savings_elems(spec, batch, n)
    denom = (
        model_states_elems(spec)
        + pipeline_activations_elems(spec, batch)
        + pipeline_buffers_elems(spec, batch)
    )
    return 2 * delta / denom


def _check_batch(batch: int) -> None:
    if batch <= 0:
        raise ValueError("batch must be positive")


@dataclass(frozen=True)
class FootprintModel:
    """Byte-level footprint of one MoE layer on one device.

    ``world_size`` matters only through expert placement: each device
    stores E / world experts' model states (expert parallelism shards
    them, Fig. 1), while the gate is replicated.

    ``workload`` (a :class:`~repro.perfmodel.workload.WorkloadSpec`)
    sizes the dispatch-side activations by the bottleneck device's
    routed row count instead of B — top-k fan-out, capacity padding and
    gating skew all grow TDI/TDO/TM.  The element width stays
    ``bytes_per_elem``: the paper's Eq. 1-6 account in fp32 regardless
    of the wire dtype, and this model keeps that convention.  A neutral
    (or absent) workload reproduces Eq. 2-5 bit for bit.
    """

    spec: MoELayerSpec
    world_size: int = 1
    bytes_per_elem: int = BYTES_PER_ELEM
    workload: "WorkloadSpec | None" = None

    def __post_init__(self) -> None:
        if self._placed:
            # An explicit placement defines each rank's expert count
            # directly — uneven assignments (and E % W != 0) are the
            # point, not an error.
            return
        if self.spec.num_experts % self.world_size:
            raise ValueError(
                f"num_experts {self.spec.num_experts} must divide evenly across "
                f"world_size {self.world_size}"
            )

    @property
    def _placed(self) -> bool:
        return self.workload is not None and self.workload.placed

    @property
    def experts_per_rank(self) -> int:
        """Experts on the fattest rank (the Eq. 1 sizing count).

        Contiguous sharding stores exactly ``E / W`` everywhere; a
        placement stores whatever its fattest rank hosts (a shadow
        replica is a full extra parameter copy).
        """
        if self._placed:
            return self.workload.placement.resolve(
                self.spec.num_experts, self.world_size
            ).max_experts_per_rank
        return self.spec.num_experts // self.world_size

    def model_states_bytes(self) -> int:
        """Per-device model states: replicated gate + local experts, x4 (Adam)."""
        local = self.spec.gate_params + self.experts_per_rank * self.spec.expert_params
        return 4 * local * self.bytes_per_elem

    def _rows(self, batch: int) -> int | None:
        """Dispatch-side row count under the workload (None = plain B)."""
        if self.workload is None:
            return None
        return self.workload.device_rows(self.spec, batch, self.world_size)

    def activations_bytes(self, batch: int) -> int:
        return (
            activations_elems(self.spec, batch, self._rows(batch))
            * self.bytes_per_elem
        )

    def buffers_bytes(self, batch: int) -> int:
        return (
            buffers_elems(self.spec, batch, self._rows(batch))
            * self.bytes_per_elem
        )

    def total_bytes(self, batch: int, pipelined: bool = False, reuse_n: int = 0) -> int:
        """Peak per-device footprint under a given execution mode.

        Under a non-default placement this is the worst device's actual
        footprint (``max(per_device_bytes)``) — pairing the fattest
        rank's states with the hottest rank's rows would bound a device
        that does not exist.
        """
        if self._placed:
            return max(self.per_device_bytes(batch, pipelined, reuse_n))
        states = self.model_states_bytes()
        act = self.activations_bytes(batch)
        buf = (
            self.activations_bytes(batch)  # Eq. 4 when pipelined
            if pipelined
            else self.buffers_bytes(batch)
        )
        saved = 0
        if reuse_n >= 2:
            if not pipelined:
                raise ValueError("memory reuse requires pipelined execution")
            saved = (
                2
                * reuse_savings_elems(
                    self.spec, batch, reuse_n, self._rows(batch)
                )
                * self.bytes_per_elem
            )
        return states + act + buf - saved

    def per_device_bytes(
        self, batch: int, pipelined: bool = False, reuse_n: int = 0
    ) -> tuple[int, ...]:
        """Eq. 5 footprint of *each* device, against its hosted experts.

        Entry ``r`` sizes rank ``r``'s model states from the experts the
        placement actually puts there (replicated gate + local experts +
        any shadow replica) and its dispatch-side activations from that
        rank's own anchored row count — so "three experts and the hot
        load" and "one cold expert" stop sharing one bound.  Without a
        workload every rank is identical and this degenerates to
        ``total_bytes`` repeated.  This is the vector the placement
        optimizer checks feasibility against.
        """
        if self.workload is None:
            return (self.total_bytes(batch, pipelined, reuse_n),) * self.world_size
        if reuse_n >= 2 and not pipelined:
            raise ValueError("memory reuse requires pipelined execution")
        load = self.workload.load(self.spec, batch, self.world_size)
        counts = load.effective_placement().counts()
        anchored = load.anchored_rank_rows()
        gate = self.spec.gate_params
        expert = self.spec.expert_params
        out = []
        for count, rank_rows in zip(counts, anchored):
            states = 4 * (gate + count * expert) * self.bytes_per_elem
            rows = max(0, math.ceil(rank_rows))
            act = activations_elems(self.spec, batch, rows) * self.bytes_per_elem
            buf = (
                act
                if pipelined
                else buffers_elems(self.spec, batch, rows) * self.bytes_per_elem
            )
            saved = 0
            if reuse_n >= 2:
                saved = (
                    2
                    * reuse_savings_elems(self.spec, batch, reuse_n, rows)
                    * self.bytes_per_elem
                )
            out.append(states + act + buf - saved)
        return tuple(out)

    def breakdown(self, batch: int) -> dict[str, int]:
        """Fig. 2 bars: bytes per category in plain expert parallelism."""
        return {
            "model_states": self.model_states_bytes(),
            "activations": self.activations_bytes(batch),
            "temporary_buffers": self.buffers_bytes(batch),
        }

    def saving_ratio(self, batch: int, n: int) -> float:
        """Eq. 6 on the per-device sharded footprint."""
        delta = (
            reuse_savings_elems(self.spec, batch, n, self._rows(batch))
            * self.bytes_per_elem
        )
        denom = self.model_states_bytes() + 2 * self.activations_bytes(batch)
        return 2 * delta / denom
