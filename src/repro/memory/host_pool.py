"""CPU offload target.

Models the pinned host memory that strategies S1-S3 swap activations
into (paper Sec. III-D "Data offloading").  Functionally it is a keyed
store of copied arrays — a fetch returns exactly the stored bytes, which
is what makes offload-based restoration bitwise-exact.  The pool tracks
its high-water mark so experiments can report host-memory cost too.
"""

from __future__ import annotations

import numpy as np


class HostBufferPool:
    """Keyed store of offloaded arrays with byte accounting."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._store: dict[object, np.ndarray] = {}
        self.bytes_used = 0
        self.peak_bytes = 0
        self.num_offloads = 0
        self.num_fetches = 0

    def offload(self, key: object, array: np.ndarray) -> None:
        """Copy ``array`` to host under ``key`` (device buffer may now be reused)."""
        if key in self._store:
            raise KeyError(f"key {key!r} already offloaded; fetch or discard first")
        copied = np.array(array, copy=True)
        if self.capacity is not None and self.bytes_used + copied.nbytes > self.capacity:
            raise MemoryError(
                f"host pool over capacity: {self.bytes_used + copied.nbytes} > "
                f"{self.capacity}"
            )
        self._store[key] = copied
        self.bytes_used += copied.nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_used)
        self.num_offloads += 1

    def fetch(self, key: object, discard: bool = True) -> np.ndarray:
        """Prefetch an array back to the device; ``discard`` frees the host copy."""
        try:
            arr = self._store[key]
        except KeyError:
            raise KeyError(f"no offloaded array under key {key!r}") from None
        self.num_fetches += 1
        if discard:
            del self._store[key]
            self.bytes_used -= arr.nbytes
            return arr
        return arr.copy()

    def discard(self, key: object) -> None:
        arr = self._store.pop(key)
        self.bytes_used -= arr.nbytes

    def clear(self) -> None:
        self._store.clear()
        self.bytes_used = 0

    def __contains__(self, key: object) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)
