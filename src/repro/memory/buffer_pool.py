"""Shared ring buffers for pipeline partitions (paper Fig. 6).

Without reuse, each of the n partitions of TDI / TM / TDO owns its slice
of a full-size tensor — the "memory bubbles" at the top of Fig. 6.  With
reuse, a *role* (tdi/tm/tdo) owns a small ring of physical slots that
successive partitions write in turn:

* ``tdi`` and ``tdo`` need **two** slots each — one being filled by the
  communication stream while the other is read/written by compute;
* ``tm`` needs **one** slot — it is produced and consumed inside a
  single compute stage.

Slot arrays are real numpy buffers (so functional execution through
them genuinely overwrites earlier partitions — the hazard the restore
strategies exist to fix) and every acquisition is metered through a
:class:`~repro.sim.memory_allocator.CachingAllocator` when one is given,
which is how Fig. 10's *achieved* savings are measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.memory_allocator import CachingAllocator

#: Physical slots per role under memory reuse (Fig. 6 bottom).
SLOTS_PER_ROLE = {"tdi": 2, "tdo": 2, "tm": 1}


@dataclass
class _Ring:
    slots: list[np.ndarray]
    handles: list[int]


class SharedBufferPool:
    """Ring-buffer manager for one device's pipeline partitions."""

    def __init__(
        self,
        allocator: CachingAllocator | None = None,
        dtype=np.float64,
    ) -> None:
        self.allocator = allocator
        self.dtype = np.dtype(dtype)
        self._rings: dict[str, _Ring] = {}

    def create_role(
        self, role: str, chunk_shape: tuple[int, ...], num_slots: int | None = None
    ) -> None:
        """Allocate the ring for ``role`` with slots of ``chunk_shape``."""
        if role in self._rings:
            raise ValueError(f"role {role!r} already created")
        if num_slots is None:
            try:
                num_slots = SLOTS_PER_ROLE[role]
            except KeyError:
                raise KeyError(
                    f"role {role!r} has no default slot count; pass num_slots"
                ) from None
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        slots, handles = [], []
        nbytes = int(np.prod(chunk_shape)) * self.dtype.itemsize
        for i in range(num_slots):
            slots.append(np.zeros(chunk_shape, dtype=self.dtype))
            if self.allocator is not None:
                handles.append(self.allocator.allocate(nbytes, label=f"{role}[{i}]"))
        self._rings[role] = _Ring(slots=slots, handles=handles)

    def get(self, role: str, partition: int) -> np.ndarray:
        """Physical slot that partition ``partition`` of ``role`` uses.

        Partitions map round-robin onto slots, so partition i and i+k*slots
        share storage — writing partition i+slots genuinely clobbers
        partition i's data.
        """
        ring = self._ring(role)
        if partition < 0:
            raise IndexError("partition must be non-negative")
        return ring.slots[partition % len(ring.slots)]

    def num_slots(self, role: str) -> int:
        return len(self._ring(role).slots)

    def release_all(self) -> None:
        """Free every ring (end of backward pass)."""
        if self.allocator is not None:
            for ring in self._rings.values():
                for handle in ring.handles:
                    self.allocator.free(handle)
        self._rings.clear()

    def total_bytes(self) -> int:
        return sum(
            slot.nbytes for ring in self._rings.values() for slot in ring.slots
        )

    def _ring(self, role: str) -> _Ring:
        try:
            return self._rings[role]
        except KeyError:
            raise KeyError(f"role {role!r} not created") from None

    def __contains__(self, role: str) -> bool:
        return role in self._rings
