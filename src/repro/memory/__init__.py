"""Memory-efficiency subsystem (paper Sec. III-D/E).

* :mod:`repro.memory.footprint` — closed-form footprint model, Eq. 1-6.
* :mod:`repro.memory.strategies` — the four reuse strategies of Table II
  plus "none", with their restore methods and workload vectors Q.
* :mod:`repro.memory.host_pool` — CPU offload target (pinned-host pool).
* :mod:`repro.memory.buffer_pool` — shared ring buffers realising the
  "memory bubbles" compression of Fig. 6, metered through the caching
  allocator so achieved savings are measurable (Fig. 10).
"""

from repro.memory.footprint import (
    FootprintModel,
    model_states_elems,
    activations_elems,
    buffers_elems,
    pipeline_activations_elems,
    reuse_savings_elems,
    memory_saving_ratio,
)
from repro.memory.strategies import Strategy, STRATEGIES, strategy_names
from repro.memory.host_pool import HostBufferPool
from repro.memory.buffer_pool import SharedBufferPool

__all__ = [
    "FootprintModel",
    "model_states_elems",
    "activations_elems",
    "buffers_elems",
    "pipeline_activations_elems",
    "reuse_savings_elems",
    "memory_saving_ratio",
    "Strategy",
    "STRATEGIES",
    "strategy_names",
    "HostBufferPool",
    "SharedBufferPool",
]
