"""Memory reusing strategies — paper Table II.

Each strategy chooses how the overwritten activations TDI and TM are
restored in the backward pass:

=========  =========  ===========  ==========================================
strategy   TDI        TM           character
=========  =========  ===========  ==========================================
none       kept       kept         pipeline without reuse (baseline)
S1         offload    offload      I/O bound: everything rides PCIe
S2         re-comm    offload      extra All-to-All, TM rides PCIe
S3         offload    recompute    TDI rides PCIe, extra GEMM for TM
S4         re-comm    recompute    compute/comm bound: no PCIe at all
=========  =========  ===========  ==========================================

``q_fw``/``q_bw`` are the workload vectors [q_comp, q_comm, q_mem] of
Eq. 10 for the H = 4M case tabulated in the paper; units are one GEMM,
one All-to-All of (b, M), and one PCIe copy of (b, M) respectively
(copying TM counts as H/M = 4 memory units).  For general H/M ratios use
:meth:`Strategy.workload`, which reduces to the tabulated values when
H = 4M (verified by a test).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RestoreMethod(enum.Enum):
    KEEP = "keep"
    OFFLOAD = "offload"
    RECOMM = "recomm"  # re-run the dispatch All-to-All from TI
    RECOMPUTE = "recompute"  # recompute TM = TDI @ W1 + b1


@dataclass(frozen=True)
class Strategy:
    """One row of Table II."""

    name: str
    tdi: RestoreMethod
    tm: RestoreMethod
    q_fw: tuple[float, float, float]
    q_bw: tuple[float, float, float]

    def __post_init__(self) -> None:
        if self.tdi in (RestoreMethod.RECOMPUTE,):
            raise ValueError("TDI cannot be recomputed (it is a comm product)")
        if self.tm in (RestoreMethod.RECOMM,):
            raise ValueError("TM cannot be re-communicated (it is a compute product)")

    @property
    def uses_mem_stream(self) -> bool:
        """True when PCIe copies run concurrently (the mu_all / eta_all rows)."""
        return RestoreMethod.OFFLOAD in (self.tdi, self.tm)

    @property
    def reuses_memory(self) -> bool:
        return self.name != "none"

    def workload(self, h_over_m: float) -> tuple[tuple[float, float, float], tuple[float, float, float]]:
        """(Q_fw, Q_bw) for an arbitrary H/M ratio.

        Derivation (counts per micro-batch):

        * forward always has 2 GEMMs and 2 All-to-Alls;
        * backward always has 4 GEMMs (two per linear layer: dW and dX)
          and 2 All-to-Alls (gradients of S and R);
        * offloading TDI adds 1 mem unit each way; offloading TM adds
          ``h_over_m`` units each way;
        * re-communicating TDI adds 1 backward comm unit;
        * recomputing TM adds 1 backward GEMM.
        """
        r = float(h_over_m)
        fw_mem = (1.0 if self.tdi is RestoreMethod.OFFLOAD else 0.0) + (
            r if self.tm is RestoreMethod.OFFLOAD else 0.0
        )
        bw_mem = fw_mem
        bw_comm = 2.0 + (1.0 if self.tdi is RestoreMethod.RECOMM else 0.0)
        bw_comp = 4.0 + (1.0 if self.tm is RestoreMethod.RECOMPUTE else 0.0)
        return (2.0, 2.0, fw_mem), (bw_comp, bw_comm, bw_mem)


NONE = Strategy(
    "none", RestoreMethod.KEEP, RestoreMethod.KEEP, (2, 2, 0), (4, 2, 0)
)
S1 = Strategy(
    "S1", RestoreMethod.OFFLOAD, RestoreMethod.OFFLOAD, (2, 2, 5), (4, 2, 5)
)
S2 = Strategy(
    "S2", RestoreMethod.RECOMM, RestoreMethod.OFFLOAD, (2, 2, 4), (4, 3, 4)
)
S3 = Strategy(
    "S3", RestoreMethod.OFFLOAD, RestoreMethod.RECOMPUTE, (2, 2, 1), (5, 2, 1)
)
S4 = Strategy(
    "S4", RestoreMethod.RECOMM, RestoreMethod.RECOMPUTE, (2, 2, 0), (5, 3, 0)
)

STRATEGIES: dict[str, Strategy] = {s.name: s for s in (NONE, S1, S2, S3, S4)}


def strategy_names(reuse_only: bool = False) -> list[str]:
    """Strategy names in Table II order; ``reuse_only`` drops "none"."""
    names = ["none", "S1", "S2", "S3", "S4"]
    return names[1:] if reuse_only else names


def get_strategy(name: str) -> Strategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {list(STRATEGIES)}"
        ) from None
