"""Adaptive pipeline parallelism (paper Sec. III-B/C).

* :mod:`repro.pipeline.partition` — micro-batch partitioning: split-by-B
  (MPipeMoE, Fig. 5b) and split-by-N (FasterMoE, Fig. 5a).
* :mod:`repro.pipeline.executor` — functional pipelined execution of the
  S -> C -> R middle section with memory-reuse strategies and explicit
  backward (restoration via offload / re-communication / recompute).
* :mod:`repro.pipeline.schedule` — Op-DAG construction for the timing
  simulator: forward and backward timelines of Fig. 4(b)/Fig. 7.
* :mod:`repro.pipeline.granularity` — Algorithm 1, the online adaptive
  granularity configuration.
"""

from repro.pipeline.partition import split_capacity, partition_slices, split_by_ranks
from repro.pipeline.executor import PipelinedMoEMiddle, MiddleContext, reference_middle
from repro.pipeline.schedule import (
    CompiledTimeline,
    MoEStageCosts,
    TimelineTemplate,
    build_timeline,
    compile_timeline,
    timeline_makespan,
    timeline_template,
)
from repro.pipeline.granularity import GranularitySearcher, RangeSet

__all__ = [
    "split_capacity",
    "partition_slices",
    "split_by_ranks",
    "PipelinedMoEMiddle",
    "MiddleContext",
    "reference_middle",
    "CompiledTimeline",
    "MoEStageCosts",
    "TimelineTemplate",
    "build_timeline",
    "compile_timeline",
    "timeline_makespan",
    "timeline_template",
    "GranularitySearcher",
    "RangeSet",
]
