"""Timing-layer schedule construction (Fig. 4(b) and Fig. 7 timelines).

Builds the Op DAG of one MoE layer's forward(+backward) on a
representative device — all devices run the symmetric schedule, so one
device's three lanes (comp / comm / mem) determine the iteration time.

Stage durations come from :class:`MoEStageCosts`; lane interference is
applied by the :class:`~repro.sim.engine.SimEngine` at run time, which
is how the paper's mu/eta factors (Table II) enter the makespan.

Comm-lane FIFO order interleaves S and R ops ("we schedule S and R to
be executed in the alternative manner", Sec. III-D); mem-lane offload
(D) ops follow their producing stage and backward prefetch (H) ops are
enqueued ahead of need, matching Fig. 7(b)-(d).

The DAG *topology* depends only on ``(n, strategy, include_backward,
decomposed_comm, sequential)`` — stage costs only scale op works.  The
builder therefore constructs a cached :class:`TimelineTemplate` per
topology; :func:`build_timeline` instantiates :class:`Op` objects from
it, while :func:`compile_timeline` pairs it with a
:class:`~repro.sim.engine.CompiledDag` so selector loops can re-price
the same schedule for thousands of scenarios without building Ops at
all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.comm.cost import NcclCostModel
from repro.config import MoELayerSpec
from repro.hardware.device import DeviceSpec
from repro.hardware.interference import StreamKind
from repro.memory.strategies import RestoreMethod, Strategy, get_strategy
from repro.sim.engine import CompiledDag, Op, SimEngine, SimResult, compile_dag

if TYPE_CHECKING:  # imported lazily at call time to stay cycle-free
    from repro.perfmodel.workload import WorkloadSpec

#: Activations travel in half precision on the wire/HBM in the paper's setup.
#: (Equal by contract to ``DTYPE_BYTES[TIMING_DTYPE]`` in
#: :mod:`repro.perfmodel.workload`, which cannot be imported here at
#: module scope without a cycle — a test pins the two together.)
TIMING_BYTES_PER_ELEM = 2

#: GEMM rows at which a kernel reaches ~50% of its saturated throughput.
#: Small micro-batches cannot fill the SMs — the cause of the GPU
#: under-utilisation at small B in Fig. 2 and of the fine-granularity
#: penalty in Fig. 12.  512 calibrates the adaptive-granularity bands to
#: the paper's (n=2 below 8k, n=4 to ~22k, n=8 beyond).
GEMM_SATURATION_ROWS = 512


def small_batch_gemm_factor(rows: int) -> float:
    """Fraction of sustained GEMM throughput achieved with ``rows`` rows."""
    if rows < 1:
        raise ValueError("rows must be >= 1")
    return rows / (rows + GEMM_SATURATION_ROWS)


@dataclass(frozen=True)
class MoEStageCosts:
    """Unimpeded per-partition stage durations (seconds).

    ``b = B / n`` tokens per micro-batch; two GEMMs of 2*b*M*H FLOPs each
    per forward stage (Eq. 7), All-to-Alls of b*M elements (Eq. 8), and
    PCIe copies of b*M / b*H elements (Eq. 9 and the H/M scaling noted
    under Table II).
    """

    s_time: float  # one fine-grained All-to-All (S or R)
    c_fw_time: float  # expert forward: 2 GEMMs
    c_bw_time: float  # expert backward: 4 GEMMs
    recompute_time: float  # 1 GEMM restoring TM
    offload_tdi_time: float  # PCIe copy of a TDI chunk
    offload_tm_time: float  # PCIe copy of a TM chunk
    p2p_s_time: float  # decomposed (FasterMoE-style) exchange of same bytes

    @classmethod
    def compute(
        cls,
        spec: MoELayerSpec,
        batch: int,
        n: int,
        device: DeviceSpec,
        comm: NcclCostModel,
        bytes_per_elem: int | None = None,
        gemm_derate: float = 1.0,
        workload: "WorkloadSpec | None" = None,
        rows_override: int | None = None,
    ) -> "MoEStageCosts":
        """Derive stage costs for per-device batch ``batch`` split n ways.

        ``gemm_derate`` scales compute throughput below the device's
        sustained rate — used to model baselines that do not hit the
        tensor-core path (Sec. V-C: "PipeMoE also takes advantage of
        Tensor Core").

        ``workload`` (a :class:`~repro.perfmodel.workload.WorkloadSpec`)
        makes the pricing routing-aware: the batch is replaced by the
        bottleneck device's routed row count (top-k fan-out, gating
        skew, per-expert capacity padding) and every byte term — the
        All-to-Alls, the point-to-point exchange *and* the PCIe offload
        copies — uses the workload's activation width, so a non-default
        dtype can never price comm and memcpy inconsistently.  A
        ``bytes_per_elem`` that contradicts the workload is rejected.
        A neutral workload (or ``None``) reproduces the k=1 /
        half-precision / uniform pricing bit for bit.

        ``rows_override`` substitutes a specific rank's row count for
        the workload's bottleneck scalar — the per-rank hetero
        composition prices each rank's own load against that rank's own
        device rates.  Only meaningful with a workload.

        When the workload carries a non-default placement, both
        All-to-All flavours are additionally priced against the
        placement's per-rank traffic view (a degraded link only gates
        the collective in proportion to the traffic the placement
        actually routes over it).
        """
        if batch < 1 or n < 1:
            raise ValueError("batch and n must be >= 1")
        if not 0 < gemm_derate <= 1:
            raise ValueError("gemm_derate must be in (0, 1]")
        traffic = None
        if workload is not None:
            bytes_per_elem = workload.resolve_bytes(bytes_per_elem)
            if workload.placed:
                load = workload.load(spec, batch, comm.effective_world)
                rows = load.device_rows
                traffic = load.traffic()
            else:
                rows = workload.device_rows(spec, batch, comm.effective_world)
            if rows_override is not None:
                if rows_override < 0:
                    raise ValueError("rows_override must be >= 0")
                rows = max(1, rows_override)
        else:
            if rows_override is not None:
                raise ValueError("rows_override needs a workload")
            if bytes_per_elem is None:
                bytes_per_elem = TIMING_BYTES_PER_ELEM
            rows = batch
        b = -(-rows // n)  # ceil: the last micro-batch may be padded
        m, h = spec.d_model, spec.d_hidden
        gemm_flops = 2.0 * b * m * h  # one GEMM
        comm_bytes = float(b * m * bytes_per_elem)
        rate = gemm_derate * small_batch_gemm_factor(b)

        def gemm_time(num: int) -> float:
            return device.gemm_time(num * gemm_flops, num_kernels=num) / rate

        if traffic is None:
            s_time = comm.alltoall_time(comm_bytes)
            p2p_s_time = comm.decomposed_alltoall_time(comm_bytes)
        else:
            s_time = comm.alltoall_time(comm_bytes, traffic=traffic)
            p2p_s_time = comm.decomposed_alltoall_time(
                comm_bytes, traffic=traffic
            )
        return cls(
            s_time=s_time,
            c_fw_time=gemm_time(2),
            c_bw_time=gemm_time(4),
            recompute_time=gemm_time(1),
            offload_tdi_time=device.memcpy_time(b * m * bytes_per_elem),
            offload_tm_time=device.memcpy_time(b * h * bytes_per_elem),
            p2p_s_time=p2p_s_time,
        )


@dataclass(eq=False)
class _TmplOp:
    """Template op: like :class:`Op` but with symbolic work.

    ``fields`` names the :class:`MoEStageCosts` attributes whose sum is
    the op's work (empty = zero-work barrier).  Identity hashing so the
    interleave helper can treat template ops like Ops.
    """

    name: str
    stream: StreamKind
    fields: tuple[str, ...]
    deps: list["_TmplOp"] = field(default_factory=list)
    tag: str = ""


@dataclass(frozen=True)
class TimelineTemplate:
    """One ``build_timeline`` topology frozen into index form.

    Ops are positions in lane-submission order; ``deps`` are indices of
    earlier positions, ``fields`` the cost attributes summed into each
    op's work.  Instantiating with a :class:`MoEStageCosts` reproduces
    exactly the Op list the pre-template builder emitted.
    """

    names: tuple[str, ...]
    streams: tuple[StreamKind, ...]
    fields: tuple[tuple[str, ...], ...]
    deps: tuple[tuple[int, ...], ...]
    tags: tuple[str, ...]

    def __post_init__(self) -> None:
        # Ops sharing a fields-tuple share one work value, so the fill
        # loop below resolves each distinct cost expression once instead
        # of per op.  (frozen dataclass: assign via object.__setattr__)
        groups: dict[tuple[str, ...], list[int]] = {}
        for i, fields in enumerate(self.fields):
            groups.setdefault(fields, []).append(i)
        object.__setattr__(
            self, "_work_groups",
            tuple((fields, tuple(idx)) for fields, idx in groups.items()),
        )

    def works(self, costs: MoEStageCosts) -> list[float]:
        """Per-op work vector under ``costs``."""
        out = [0.0] * len(self.fields)
        for fields, indices in self._work_groups:
            if not fields:
                continue
            value = getattr(costs, fields[0])
            for f in fields[1:]:
                value += getattr(costs, f)
            for i in indices:
                out[i] = value
        return out

    def works_matrix(self, columns, size: int):
        """Work vectors for a whole batch of scenarios at once.

        ``columns`` maps :class:`MoEStageCosts` field names to (size,)
        float64 arrays (one row per scenario).  Returns a (size,
        num_ops) matrix whose row ``s`` equals ``works(costs_s)`` bit
        for bit: each distinct fields-tuple is summed left to right
        exactly as the scalar fill does, then broadcast into its op
        columns.
        """
        import numpy as np

        out = np.zeros((size, len(self.fields)))
        for fields, indices in self._work_groups:
            if not fields:
                continue
            value = columns[fields[0]]
            for f in fields[1:]:
                value = value + columns[f]
            out[:, indices] = value[:, None]
        return out

    def instantiate(self, costs: MoEStageCosts, device: int = 0) -> list[Op]:
        """Materialize the template as fresh :class:`Op` objects."""
        works = self.works(costs)
        ops: list[Op] = []
        for i, (name, stream, dep_idx, tag) in enumerate(
            zip(self.names, self.streams, self.deps, self.tags)
        ):
            ops.append(
                Op(name, device, stream, works[i],
                   tuple(ops[d] for d in dep_idx), tag)
            )
        return ops


def _build_template(
    n: int,
    strat: Strategy,
    include_backward: bool,
    decomposed_comm: bool,
    sequential: bool,
) -> TimelineTemplate:
    """Construct the (n, strategy) topology once, symbolically."""
    if n < 1:
        raise ValueError("n must be >= 1")
    s_field = "p2p_s_time" if decomposed_comm else "s_time"
    ops: list[_TmplOp] = []

    def op(name, stream, fields, deps=(), tag=""):
        o = _TmplOp(name, stream, tuple(fields), list(deps), tag)
        ops.append(o)
        return o

    # ---------------------------------------------------------------- forward
    s_ops, c_ops, r_ops = [], [], []
    d_ops = []  # device-to-host offloads
    prev_serial = None
    for j in range(n):
        s_deps = []
        if sequential and prev_serial is not None:
            s_deps.append(prev_serial)
        s_j = op(f"S{j}", StreamKind.COMM, [s_field], s_deps, tag="S")
        c_j = op(f"C{j}", StreamKind.COMP, ["c_fw_time"], [s_j], tag="C")
        r_j = op(f"R{j}", StreamKind.COMM, [s_field], [c_j], tag="R")
        s_ops.append(s_j)
        c_ops.append(c_j)
        r_ops.append(r_j)
        prev_serial = r_j
        if strat.tdi is RestoreMethod.OFFLOAD:
            d_ops.append(
                op(f"D_tdi{j}", StreamKind.MEM, ["offload_tdi_time"], [s_j], tag="D")
            )
        if strat.tm is RestoreMethod.OFFLOAD:
            d_ops.append(
                op(f"D_tm{j}", StreamKind.MEM, ["offload_tm_time"], [c_j], tag="D")
            )

    # Comm-lane FIFO: reorder the list so S and R alternate (S0 S1 R0 S2 R1 ...).
    # Sequential timelines keep natural order — S_{j+1} depends on R_j, so
    # hoisting it ahead in the lane would deadlock the FIFO.
    if not sequential:
        _interleave_comm(ops, s_ops, r_ops)

    if include_backward:
        # --------------------------------------------------------- boundary
        # The loss/classifier between forward and backward of this layer.
        boundary_deps = list(r_ops) + d_ops
        loss = op("loss", StreamKind.COMP, (), boundary_deps, tag="X")

        # --------------------------------------------------------- backward
        rb_ops, sb_ops = [], []
        prev_serial = loss
        for j in range(n):
            rb_deps = [loss]
            if sequential:
                rb_deps.append(prev_serial)
            rb_j = op(f"Rb{j}", StreamKind.COMM, [s_field], rb_deps, tag="R")
            cb_deps = [rb_j]
            # Restore TDI.
            if strat.tdi is RestoreMethod.OFFLOAD:
                cb_deps.append(
                    op(f"H_tdi{j}", StreamKind.MEM, ["offload_tdi_time"], [loss],
                       tag="H")
                )
            elif strat.tdi is RestoreMethod.RECOMM:
                cb_deps.append(
                    op(f"S'_{j}", StreamKind.COMM, [s_field], [loss], tag="S")
                )
            # Restore TM.
            if strat.tm is RestoreMethod.OFFLOAD:
                cb_deps.append(
                    op(f"H_tm{j}", StreamKind.MEM, ["offload_tm_time"], [loss],
                       tag="H")
                )
            cb_fields = ["c_bw_time"] + (
                ["recompute_time"] if strat.tm is RestoreMethod.RECOMPUTE else []
            )
            cb_j = op(f"Cb{j}", StreamKind.COMP, cb_fields, cb_deps, tag="C")
            sb_j = op(f"Sb{j}", StreamKind.COMM, [s_field], [cb_j], tag="S")
            rb_ops.append(rb_j)
            sb_ops.append(sb_j)
            prev_serial = sb_j

        if not sequential:
            _interleave_comm(ops, rb_ops, sb_ops)

    index = {id(o): i for i, o in enumerate(ops)}
    deps = tuple(tuple(index[id(d)] for d in o.deps) for o in ops)
    # The interleave only ever moves producers earlier, so positions stay
    # a valid topological order — which instantiate() relies on.
    assert all(d < i for i, dd in enumerate(deps) for d in dd)
    return TimelineTemplate(
        names=tuple(o.name for o in ops),
        streams=tuple(o.stream for o in ops),
        fields=tuple(o.fields for o in ops),
        deps=deps,
        tags=tuple(o.tag for o in ops),
    )


_TEMPLATES: dict[tuple, TimelineTemplate] = {}
_COMPILED: dict[tuple, "CompiledTimeline"] = {}


def timeline_template(
    n: int,
    strategy: Strategy | str = "none",
    include_backward: bool = True,
    decomposed_comm: bool = False,
    sequential: bool = False,
) -> TimelineTemplate:
    """Cached topology lookup — one template per (n, strategy, flags).

    Strategy names key the cache directly (hashing a string beats
    hashing a Strategy dataclass on the hot path); Strategy objects key
    on the object, so a name and its registered object may each hold an
    (identical) template — a few dozen bytes, not worth unifying.
    """
    key = (n, strategy, include_backward, decomposed_comm, sequential)
    template = _TEMPLATES.get(key)
    if template is None:
        strat = get_strategy(strategy) if isinstance(strategy, str) else strategy
        template = _build_template(
            n, strat, include_backward, decomposed_comm, sequential
        )
        _TEMPLATES[key] = template
    return template


def build_timeline(
    costs: MoEStageCosts,
    n: int,
    strategy: Strategy | str = "none",
    include_backward: bool = True,
    device: int = 0,
    decomposed_comm: bool = False,
    sequential: bool = False,
) -> list[Op]:
    """Ops for one layer's forward (and backward) at granularity ``n``.

    ``sequential=True`` chains every stage (FastMoE / PipeMoE(n=1)
    semantics: no overlap even across lanes).  ``decomposed_comm`` prices
    All-to-Alls with the point-to-point decomposition (FasterMoE).
    """
    template = timeline_template(
        n, strategy, include_backward, decomposed_comm, sequential
    )
    return template.instantiate(costs, device=device)


@dataclass(frozen=True)
class CompiledTimeline:
    """A timeline topology bound to its :class:`CompiledDag`.

    ``makespan(costs)`` prices the schedule without constructing a
    single :class:`Op` — the per-scenario cost is just the work-vector
    fill plus the engine's index-array event loop.
    """

    template: TimelineTemplate
    dag: CompiledDag

    def works(self, costs: MoEStageCosts) -> list[float]:
        return self.template.works(costs)

    def makespan(self, costs: MoEStageCosts, engine: SimEngine | None = None) -> float:
        return (engine or SimEngine()).compiled_makespan(
            self.dag, self.template.works(costs)
        )


def compile_timeline(
    n: int,
    strategy: Strategy | str = "none",
    include_backward: bool = True,
    device: int = 0,
    decomposed_comm: bool = False,
    sequential: bool = False,
) -> CompiledTimeline:
    """Cached compiled form of one ``build_timeline`` topology."""
    key = (n, strategy, include_backward, decomposed_comm, sequential, device)
    compiled = _COMPILED.get(key)
    if compiled is None:
        template = timeline_template(
            n, strategy, include_backward, decomposed_comm, sequential
        )
        dag = compile_dag(template.instantiate(_UNIT_COSTS, device=device))
        compiled = CompiledTimeline(template=template, dag=dag)
        _COMPILED[key] = compiled
    return compiled


#: Placeholder costs used only to materialize a template for compilation
#: (the compiled dag's default work vector is never read by the cache).
_UNIT_COSTS = MoEStageCosts(
    s_time=1.0, c_fw_time=1.0, c_bw_time=1.0, recompute_time=1.0,
    offload_tdi_time=1.0, offload_tm_time=1.0, p2p_s_time=1.0,
)


def _interleave_comm(ops: list, first: list, second: list) -> None:
    """Reorder ``ops`` in place so the comm lane sees S/R alternating.

    Lane order is submission order in the simulator; we pull the comm ops
    of ``first``/``second`` into the interleaved sequence
    f0, f1, s0, f2, s1, ..., s{n-1} while leaving non-comm ops where they
    are (only relative order within a lane matters).
    """
    n = len(first)
    desired: list = []
    for j in range(n):
        desired.append(first[j])
        if j >= 1:
            desired.append(second[j - 1])
    desired.append(second[n - 1])
    members = set(map(id, first)) | set(map(id, second))
    comm_positions = [i for i, o in enumerate(ops) if id(o) in members]
    for pos, o in zip(comm_positions, desired):
        ops[pos] = o


def timeline_makespan(ops: list[Op], engine: SimEngine | None = None) -> SimResult:
    """Run a timeline through the interference simulator."""
    return (engine or SimEngine()).run(ops)
