"""Timing-layer schedule construction (Fig. 4(b) and Fig. 7 timelines).

Builds the Op DAG of one MoE layer's forward(+backward) on a
representative device — all devices run the symmetric schedule, so one
device's three lanes (comp / comm / mem) determine the iteration time.

Stage durations come from :class:`MoEStageCosts`; lane interference is
applied by the :class:`~repro.sim.engine.SimEngine` at run time, which
is how the paper's mu/eta factors (Table II) enter the makespan.

Comm-lane FIFO order interleaves S and R ops ("we schedule S and R to
be executed in the alternative manner", Sec. III-D); mem-lane offload
(D) ops follow their producing stage and backward prefetch (H) ops are
enqueued ahead of need, matching Fig. 7(b)-(d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.cost import NcclCostModel
from repro.config import MoELayerSpec
from repro.hardware.device import DeviceSpec
from repro.hardware.interference import StreamKind
from repro.memory.strategies import RestoreMethod, Strategy, get_strategy
from repro.sim.engine import Op, SimEngine, SimResult

#: Activations travel in half precision on the wire/HBM in the paper's setup.
TIMING_BYTES_PER_ELEM = 2

#: GEMM rows at which a kernel reaches ~50% of its saturated throughput.
#: Small micro-batches cannot fill the SMs — the cause of the GPU
#: under-utilisation at small B in Fig. 2 and of the fine-granularity
#: penalty in Fig. 12.  512 calibrates the adaptive-granularity bands to
#: the paper's (n=2 below 8k, n=4 to ~22k, n=8 beyond).
GEMM_SATURATION_ROWS = 512


def small_batch_gemm_factor(rows: int) -> float:
    """Fraction of sustained GEMM throughput achieved with ``rows`` rows."""
    if rows < 1:
        raise ValueError("rows must be >= 1")
    return rows / (rows + GEMM_SATURATION_ROWS)


@dataclass(frozen=True)
class MoEStageCosts:
    """Unimpeded per-partition stage durations (seconds).

    ``b = B / n`` tokens per micro-batch; two GEMMs of 2*b*M*H FLOPs each
    per forward stage (Eq. 7), All-to-Alls of b*M elements (Eq. 8), and
    PCIe copies of b*M / b*H elements (Eq. 9 and the H/M scaling noted
    under Table II).
    """

    s_time: float  # one fine-grained All-to-All (S or R)
    c_fw_time: float  # expert forward: 2 GEMMs
    c_bw_time: float  # expert backward: 4 GEMMs
    recompute_time: float  # 1 GEMM restoring TM
    offload_tdi_time: float  # PCIe copy of a TDI chunk
    offload_tm_time: float  # PCIe copy of a TM chunk
    p2p_s_time: float  # decomposed (FasterMoE-style) exchange of same bytes

    @classmethod
    def compute(
        cls,
        spec: MoELayerSpec,
        batch: int,
        n: int,
        device: DeviceSpec,
        comm: NcclCostModel,
        bytes_per_elem: int = TIMING_BYTES_PER_ELEM,
        gemm_derate: float = 1.0,
    ) -> "MoEStageCosts":
        """Derive stage costs for per-device batch ``batch`` split n ways.

        ``gemm_derate`` scales compute throughput below the device's
        sustained rate — used to model baselines that do not hit the
        tensor-core path (Sec. V-C: "PipeMoE also takes advantage of
        Tensor Core").
        """
        if batch < 1 or n < 1:
            raise ValueError("batch and n must be >= 1")
        if not 0 < gemm_derate <= 1:
            raise ValueError("gemm_derate must be in (0, 1]")
        b = -(-batch // n)  # ceil: the last micro-batch may be padded
        m, h = spec.d_model, spec.d_hidden
        gemm_flops = 2.0 * b * m * h  # one GEMM
        comm_bytes = float(b * m * bytes_per_elem)
        rate = gemm_derate * small_batch_gemm_factor(b)

        def gemm_time(num: int) -> float:
            return device.gemm_time(num * gemm_flops, num_kernels=num) / rate

        return cls(
            s_time=comm.alltoall_time(comm_bytes),
            c_fw_time=gemm_time(2),
            c_bw_time=gemm_time(4),
            recompute_time=gemm_time(1),
            offload_tdi_time=device.memcpy_time(b * m * bytes_per_elem),
            offload_tm_time=device.memcpy_time(b * h * bytes_per_elem),
            p2p_s_time=comm.decomposed_alltoall_time(comm_bytes),
        )


def build_timeline(
    costs: MoEStageCosts,
    n: int,
    strategy: Strategy | str = "none",
    include_backward: bool = True,
    device: int = 0,
    decomposed_comm: bool = False,
    sequential: bool = False,
) -> list[Op]:
    """Ops for one layer's forward (and backward) at granularity ``n``.

    ``sequential=True`` chains every stage (FastMoE / PipeMoE(n=1)
    semantics: no overlap even across lanes).  ``decomposed_comm`` prices
    All-to-Alls with the point-to-point decomposition (FasterMoE).
    """
    strat = get_strategy(strategy) if isinstance(strategy, str) else strategy
    s_time = costs.p2p_s_time if decomposed_comm else costs.s_time
    ops: list[Op] = []

    def op(name, stream, work, deps=(), tag=""):
        o = Op(name, device, stream, work, tuple(deps), tag)
        ops.append(o)
        return o

    # ---------------------------------------------------------------- forward
    s_ops, c_ops, r_ops = [], [], []
    d_ops = []  # device-to-host offloads
    prev_serial = None
    for j in range(n):
        s_deps = []
        if sequential and prev_serial is not None:
            s_deps.append(prev_serial)
        s_j = op(f"S{j}", StreamKind.COMM, s_time, s_deps, tag="S")
        c_j = op(f"C{j}", StreamKind.COMP, costs.c_fw_time, [s_j], tag="C")
        r_j = op(f"R{j}", StreamKind.COMM, s_time, [c_j], tag="R")
        s_ops.append(s_j)
        c_ops.append(c_j)
        r_ops.append(r_j)
        prev_serial = r_j
        if strat.tdi is RestoreMethod.OFFLOAD:
            d_ops.append(
                op(f"D_tdi{j}", StreamKind.MEM, costs.offload_tdi_time, [s_j], tag="D")
            )
        if strat.tm is RestoreMethod.OFFLOAD:
            d_ops.append(
                op(f"D_tm{j}", StreamKind.MEM, costs.offload_tm_time, [c_j], tag="D")
            )

    # Comm-lane FIFO: reorder the list so S and R alternate (S0 S1 R0 S2 R1 ...).
    # Sequential timelines keep natural order — S_{j+1} depends on R_j, so
    # hoisting it ahead in the lane would deadlock the FIFO.
    if not sequential:
        _interleave_comm(ops, s_ops, r_ops)

    if not include_backward:
        return ops

    # ------------------------------------------------------------- boundary
    # The loss/classifier between forward and backward of this layer.
    boundary_deps = list(r_ops) + d_ops
    loss = op("loss", StreamKind.COMP, 0.0, boundary_deps, tag="X")

    # ---------------------------------------------------------------- backward
    rb_ops, sb_ops = [], []
    prev_serial = loss
    for j in range(n):
        rb_deps = [loss]
        if sequential:
            rb_deps.append(prev_serial)
        rb_j = op(f"Rb{j}", StreamKind.COMM, s_time, rb_deps, tag="R")
        cb_deps = [rb_j]
        # Restore TDI.
        if strat.tdi is RestoreMethod.OFFLOAD:
            cb_deps.append(
                op(f"H_tdi{j}", StreamKind.MEM, costs.offload_tdi_time, [loss], tag="H")
            )
        elif strat.tdi is RestoreMethod.RECOMM:
            cb_deps.append(
                op(f"S'_{j}", StreamKind.COMM, s_time, [loss], tag="S")
            )
        # Restore TM.
        if strat.tm is RestoreMethod.OFFLOAD:
            cb_deps.append(
                op(f"H_tm{j}", StreamKind.MEM, costs.offload_tm_time, [loss], tag="H")
            )
        cb_work = costs.c_bw_time + (
            costs.recompute_time if strat.tm is RestoreMethod.RECOMPUTE else 0.0
        )
        cb_j = op(f"Cb{j}", StreamKind.COMP, cb_work, cb_deps, tag="C")
        sb_j = op(f"Sb{j}", StreamKind.COMM, s_time, [cb_j], tag="S")
        rb_ops.append(rb_j)
        sb_ops.append(sb_j)
        prev_serial = sb_j

    if not sequential:
        _interleave_comm(ops, rb_ops, sb_ops)
    return ops


def _interleave_comm(ops: list[Op], first: list[Op], second: list[Op]) -> None:
    """Reorder ``ops`` in place so the comm lane sees S/R alternating.

    Lane order is submission order in the simulator; we pull the comm ops
    of ``first``/``second`` into the interleaved sequence
    f0, f1, s0, f2, s1, ..., s{n-1} while leaving non-comm ops where they
    are (only relative order within a lane matters).
    """
    n = len(first)
    desired: list[Op] = []
    for j in range(n):
        desired.append(first[j])
        if j >= 1:
            desired.append(second[j - 1])
    desired.append(second[n - 1])
    comm_positions = [
        i for i, o in enumerate(ops) if o in set(first) | set(second)
    ]
    for pos, o in zip(comm_positions, desired):
        ops[pos] = o


def timeline_makespan(ops: list[Op], engine: SimEngine | None = None) -> SimResult:
    """Run a timeline through the interference simulator."""
    return (engine or SimEngine()).run(ops)
