"""Micro-batch partitioning (paper Fig. 5).

MPipeMoE splits the dispatch buffer along the *token* (capacity) axis —
every partition still spans all destination ranks, so each partition is
one fused fine-grained All-to-All (Fig. 5b).  FasterMoE splits along the
*rank* axis, decomposing the All-to-All into point-to-point exchanges
(Fig. 5a); we implement it for the baseline.
"""

from __future__ import annotations

import numpy as np


def split_capacity(capacity: int, n: int) -> int:
    """Per-partition capacity chunk; requires n | capacity.

    The MoE layer pads capacity up to a multiple of the partition count
    before dispatch so this always holds at call sites.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if capacity % n:
        raise ValueError(f"capacity {capacity} not divisible by n={n}")
    return capacity // n


def pad_capacity(capacity: int, n: int) -> int:
    """Round capacity up to a multiple of n (adds only zero padding slots)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return (capacity + n - 1) // n * n


def partition_slices(capacity: int, n: int) -> list[slice]:
    """Slices along the capacity axis for the n micro-batches (split-by-B)."""
    chunk = split_capacity(capacity, n)
    return [slice(j * chunk, (j + 1) * chunk) for j in range(n)]


def split_by_ranks(world_size: int, n: int) -> list[np.ndarray]:
    """FasterMoE fashion: partition the destination-rank axis into n groups.

    Each group's exchange degenerates into point-to-point sends (the
    partition only involves a subset of peers), which is why FasterMoE
    cannot use fused NCCL All-to-All (paper Sec. III-B).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n > world_size:
        raise ValueError(f"cannot split {world_size} ranks into {n} groups")
    return [g for g in np.array_split(np.arange(world_size), n)]
