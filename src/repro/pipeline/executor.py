"""Functional pipelined execution of the MoE middle section.

The *middle section* is everything between dispatch and combine in
Fig. 1: the first All-to-All (S), expert computation (C), and the second
All-to-All (R), micro-batch pipelined per Fig. 4(b).

Data layout
-----------
``ti_all`` has shape ``(W, W, EperR, C, M)``:

    ti_all[src, dst, e, slot, :]  — token that rank *src* sends to local
    expert *e* of rank *dst*, capacity slot *slot*.

The dispatch All-to-All for capacity slice ``sl`` is the axis-0/1
transpose ``ti_all[:, r, :, sl, :] -> tdi of rank r``; the return
All-to-All is the inverse transpose.  Running all ranks in one process
makes these exchanges exact array permutations, so the pipelined +
memory-reused execution can be tested for bitwise agreement with the
sequential reference.

Memory reuse
------------
With a reuse strategy, TDI / TM / TDO chunks live in
:class:`~repro.memory.buffer_pool.SharedBufferPool` ring slots that later
partitions *genuinely overwrite*.  The backward pass restores them per
the strategy (Table II):

* ``offload``  — fetch the copy stashed in the :class:`HostBufferPool`;
* ``recomm``   — redo the partition's All-to-All from ``ti_all`` (TI is
  a layer input and is always retained);
* ``recompute``— recompute ``TM = TDI @ W1 + b1`` from the restored TDI.

All device-side buffers are metered through an optional
:class:`~repro.sim.memory_allocator.CachingAllocator` so the achieved
peak can be compared against the Eq. 5/6 bound (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.experts import ExpertFFN, ExpertGrads
from repro.memory.buffer_pool import SharedBufferPool
from repro.memory.host_pool import HostBufferPool
from repro.memory.strategies import RestoreMethod, Strategy, get_strategy
from repro.pipeline.partition import partition_slices
from repro.sim.memory_allocator import CachingAllocator
from repro.tensor import Tensor
from repro.tensor.ops import _make


@dataclass
class MiddleContext:
    """Forward stash consumed by backward (contents depend on strategy)."""

    ti_all: np.ndarray
    slices: list[slice]
    # strategy "none": retained chunks per partition per rank
    tdi_kept: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    tm_kept: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)


class PipelinedMoEMiddle:
    """S -> C -> R over n micro-batch partitions with a reuse strategy.

    Parameters
    ----------
    experts:
        ``experts[r]`` is the list of local experts of rank r (all ranks'
        experts are visible because ranks share the process).
    num_partitions:
        Pipeline granularity n; requires ``n | C`` at call time.
    strategy:
        A Table II strategy name or object; "none" keeps activations.
    meter:
        Optional allocator metering *rank 0*'s device buffers (ranks are
        symmetric, so one rank's peak is the per-device footprint).
    host_pool:
        Offload target; required by strategies that offload.
    """

    def __init__(
        self,
        experts: Sequence[Sequence[ExpertFFN]],
        num_partitions: int,
        strategy: Strategy | str = "none",
        meter: CachingAllocator | None = None,
        host_pool: HostBufferPool | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.experts = [list(row) for row in experts]
        self.world_size = len(self.experts)
        if self.world_size < 1:
            raise ValueError("need at least one rank of experts")
        per_rank = len(self.experts[0])
        if any(len(row) != per_rank for row in self.experts):
            raise ValueError("all ranks must host the same number of experts")
        self.experts_per_rank = per_rank
        self.n = num_partitions
        self.strategy = get_strategy(strategy) if isinstance(strategy, str) else strategy
        if self.strategy.reuses_memory and self.n < 2:
            raise ValueError("memory reuse needs n >= 2 (nothing to share at n=1)")
        if (
            RestoreMethod.OFFLOAD in (self.strategy.tdi, self.strategy.tm)
            and host_pool is None
        ):
            raise ValueError(f"strategy {self.strategy.name} requires a host_pool")
        self.meter = meter
        self.host_pool = host_pool
        self._ctx: MiddleContext | None = None
        self._pools: list[SharedBufferPool] | None = None
        self._none_handles: list[int] = []

    # ------------------------------------------------------------------ forward
    def forward(self, ti_all: np.ndarray) -> np.ndarray:
        """Run the pipelined middle; returns ``to_all`` of the same shape."""
        w, w2, eper, cap, m = self._check_input(ti_all)
        slices = partition_slices(cap, self.n)
        ctx = MiddleContext(ti_all=ti_all, slices=slices)
        chunk = cap // self.n
        to_all = np.zeros_like(ti_all)

        reuse = self.strategy.reuses_memory
        if reuse:
            self._pools = self._make_pools(w, eper, chunk, m, ti_all.dtype)

        for j, sl in enumerate(slices):
            for r in range(w):
                tdi = self._chunk_buffer("tdi", r, j, (w, eper, chunk, m), ti_all.dtype)
                # S_j: dispatch All-to-All (axis transpose).
                tdi[...] = ti_all[:, r, :, sl, :]
                tdo = self._chunk_buffer("tdo", r, j, (w, eper, chunk, m), ti_all.dtype)
                tm = self._chunk_buffer(
                    "tm", r, j, (eper, w * chunk, self._dh()), ti_all.dtype
                )
                # C_j: local experts.
                for e in range(eper):
                    x = tdi[:, e].reshape(w * chunk, m)
                    y, tm_pre = self.experts[r][e].forward_np(x)
                    tdo[:, e] = y.reshape(w, chunk, m)
                    tm[e] = tm_pre
                # R_j: return All-to-All.
                to_all[:, r, :, sl, :] = tdo
                self._stash(ctx, r, j, tdi, tm)
        self._ctx = ctx
        return to_all

    # ------------------------------------------------------------------ backward
    def backward(self, dto_all: np.ndarray) -> np.ndarray:
        """Backward through R, C, S for every partition; returns ``d ti_all``.

        Expert parameter gradients are folded into each expert's ``.grad``
        slots via :meth:`ExpertFFN.accumulate_grads`.
        """
        ctx = self._ctx
        if ctx is None:
            raise RuntimeError("backward called before forward")
        if dto_all.shape != ctx.ti_all.shape:
            raise ValueError(
                f"dto_all shape {dto_all.shape} != forward shape {ctx.ti_all.shape}"
            )
        w = self.world_size
        eper = self.experts_per_rank
        m = ctx.ti_all.shape[-1]
        cap = ctx.ti_all.shape[3]
        chunk = cap // self.n
        dti_all = np.zeros_like(ctx.ti_all)
        grad_acc: dict[tuple[int, int], ExpertGrads] = {}
        self._meter_backward_buffers(w, eper, chunk, m, ctx.ti_all.dtype)

        # Partitions are processed in pipeline order (Fig. 7's backward
        # timelines run B1..Bn left to right); order does not affect values.
        for j, sl in enumerate(ctx.slices):
            for r in range(w):
                # dR_j: gradient of the return All-to-All.
                dtdo = dto_all[:, r, :, sl, :]
                tdi = self._restore_tdi(ctx, r, j, (w, eper, chunk, m))
                dtdi = np.empty((w, eper, chunk, m), dtype=dto_all.dtype)
                for e in range(eper):
                    x = tdi[:, e].reshape(w * chunk, m)
                    tm_pre = self._restore_tm(ctx, r, j, e, x)
                    dy = dtdo[:, e].reshape(w * chunk, m)
                    dx, grads = self.experts[r][e].backward_np(x, tm_pre, dy)
                    dtdi[:, e] = dx.reshape(w, chunk, m)
                    key = (r, e)
                    if key in grad_acc:
                        grad_acc[key].add_(grads)
                    else:
                        grad_acc[key] = grads
                # dS_j: gradient of the dispatch All-to-All.
                dti_all[:, r, :, sl, :] = dtdi

        for (r, e), grads in grad_acc.items():
            self.experts[r][e].accumulate_grads(grads)

        self._release()
        self._ctx = None
        return dti_all

    def _meter_backward_buffers(self, w, eper, chunk, m, dtype) -> None:
        """Account for the gradient *temporary buffers* of Sec. II-B.

        The math writes gradients straight into ``dti_all``, but a real
        device holds per-partition dTDO / dTDI / dTM chunks: all n of
        them in flight without reuse (Eq. 4's M^pipe_buf = M^pipe_act),
        or 2/2/1 ring slots with reuse (Eq. 5 applies to buffers too).
        These handles are accounting-only and freed by :meth:`_release`.
        """
        if self.meter is None:
            return
        itemsize = np.dtype(dtype).itemsize
        grad_chunk = w * eper * chunk * m * itemsize
        dtm_chunk = eper * w * chunk * self._dh() * itemsize
        # Boundary gradients dTI / dTO are full (B, M) temporaries in any
        # mode — Eq. 5's savings cover only the partitioned middle tensors.
        for role in ("dTI", "dTO"):
            self._none_handles.append(
                self.meter.allocate(self.n * grad_chunk, label=role)
            )
        if self.strategy.reuses_memory:
            slots = [("dtdi", grad_chunk, 2), ("dtdo", grad_chunk, 2),
                     ("dtm", dtm_chunk, 1)]
            for role, nbytes, count in slots:
                for i in range(count):
                    self._none_handles.append(
                        self.meter.allocate(nbytes, label=f"{role}[{i}]")
                    )
        else:
            for j in range(self.n):
                for role, nbytes in (("dtdi", grad_chunk), ("dtdo", grad_chunk),
                                     ("dtm", dtm_chunk)):
                    self._none_handles.append(
                        self.meter.allocate(nbytes, label=f"{role}[p{j}]")
                    )

    def discard_context(self) -> None:
        """Drop the forward stash without running backward (inference path)."""
        self._release()
        self._ctx = None

    # ------------------------------------------------------------------ helpers
    def _dh(self) -> int:
        return self.experts[0][0].d_hidden

    def _check_input(self, ti_all: np.ndarray):
        if ti_all.ndim != 5:
            raise ValueError(
                "ti_all must be (W, W, experts_per_rank, capacity, d_model), "
                f"got ndim={ti_all.ndim}"
            )
        w, w2, eper, cap, m = ti_all.shape
        if w != self.world_size or w2 != self.world_size:
            raise ValueError(
                f"ti_all world dims {(w, w2)} != engine world {self.world_size}"
            )
        if eper != self.experts_per_rank:
            raise ValueError(
                f"ti_all has {eper} experts/rank, engine has {self.experts_per_rank}"
            )
        if cap % self.n:
            raise ValueError(f"capacity {cap} not divisible by n={self.n}")
        if m != self.experts[0][0].d_model:
            raise ValueError("d_model mismatch between ti_all and experts")
        return w, w2, eper, cap, m

    def _make_pools(self, w, eper, chunk, m, dtype) -> list[SharedBufferPool]:
        pools = []
        for r in range(w):
            pool = SharedBufferPool(
                allocator=self.meter if r == 0 else None, dtype=dtype
            )
            pool.create_role("tdi", (w, eper, chunk, m))
            pool.create_role("tdo", (w, eper, chunk, m))
            pool.create_role("tm", (eper, w * chunk, self._dh()))
            pools.append(pool)
        return pools

    def _chunk_buffer(self, role, rank, partition, shape, dtype) -> np.ndarray:
        if self.strategy.reuses_memory:
            return self._pools[rank].get(role, partition)
        buf = np.empty(shape, dtype=dtype)
        if self.meter is not None and rank == 0:
            self._none_handles.append(
                self.meter.allocate(buf.nbytes, label=f"{role}[p{partition}]")
            )
        return buf

    def _stash(self, ctx: MiddleContext, r: int, j: int, tdi, tm) -> None:
        strat = self.strategy
        if strat.tdi is RestoreMethod.KEEP:
            ctx.tdi_kept[(r, j)] = tdi
        elif strat.tdi is RestoreMethod.OFFLOAD:
            self.host_pool.offload(("tdi", r, j), tdi)
        # RECOMM keeps nothing: ti_all is retained by the caller.
        if strat.tm is RestoreMethod.KEEP:
            ctx.tm_kept[(r, j)] = tm
        elif strat.tm is RestoreMethod.OFFLOAD:
            self.host_pool.offload(("tm", r, j), tm)
        # RECOMPUTE keeps nothing.

    def _restore_tdi(self, ctx: MiddleContext, r: int, j: int, shape) -> np.ndarray:
        strat = self.strategy
        if strat.tdi is RestoreMethod.KEEP:
            return ctx.tdi_kept[(r, j)]
        if strat.tdi is RestoreMethod.OFFLOAD:
            return self.host_pool.fetch(("tdi", r, j))
        # Re-communication: redo S_j from TI (Fig. 7 S2/S4 backward).
        return np.ascontiguousarray(ctx.ti_all[:, r, :, ctx.slices[j], :])

    def _restore_tm(
        self, ctx: MiddleContext, r: int, j: int, e: int, x: np.ndarray
    ) -> np.ndarray:
        strat = self.strategy
        if strat.tm is RestoreMethod.KEEP:
            return ctx.tm_kept[(r, j)][e]
        if strat.tm is RestoreMethod.OFFLOAD:
            key = ("tm", r, j)
            # Fetch once per (rank, partition); keep for remaining experts.
            if key in self.host_pool:
                tm = self.host_pool.fetch(key, discard=(e == self.experts_per_rank - 1))
                if e < self.experts_per_rank - 1:
                    # Leave in pool for the next expert of this partition.
                    pass
                return tm[e] if tm.ndim == 3 else tm
            raise KeyError(f"TM for rank {r} partition {j} was not offloaded")
        # Recompute from (restored) TDI.
        return self.experts[r][e].recompute_tm(x)

    def _release(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.release_all()
            self._pools = None
        if self.meter is not None:
            for handle in self._none_handles:
                self.meter.free(handle)
            self._none_handles.clear()
        if self.host_pool is not None:
            self.host_pool.clear()


# ---------------------------------------------------------------- autograd glue
def middle_autograd(ti_all: Tensor, engine: PipelinedMoEMiddle) -> Tensor:
    """Wrap the explicit engine as a single differentiable op.

    Parents are the stacked dispatch tensor and every expert parameter,
    so a ``loss.backward()`` through the MoE layer drives the engine's
    explicit backward — including activation restoration — and lands
    parameter gradients in the usual ``.grad`` slots.
    """
    params: list[Tensor] = [
        p for row in engine.experts for expert in row for p in expert.parameters()
    ]
    out_data = engine.forward(ti_all.data)

    def backward(g: np.ndarray):
        before = [None if p.grad is None else p.grad.copy() for p in params]
        for p in params:
            p.zero_grad()
        dti = engine.backward(g)
        param_grads = []
        for p, prev in zip(params, before):
            this = p.grad if p.grad is not None else np.zeros_like(p.data)
            param_grads.append(this)
            p.grad = prev  # restore; the tape will re-accumulate
        return (dti, *param_grads)

    return _make(out_data, (ti_all, *params), backward)


def reference_middle(
    ti_all: np.ndarray, experts: Sequence[Sequence[ExpertFFN]]
) -> np.ndarray:
    """Sequential (n=1, no reuse) forward of the middle — test oracle."""
    engine = PipelinedMoEMiddle(experts, num_partitions=1, strategy="none")
    return engine.forward(ti_all)
