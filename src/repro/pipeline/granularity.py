"""Adaptive pipeline granularity configuration — paper Algorithm 1.

The optimal partition count n grows monotonically with the token batch
size B (the paper's hypothesis, validated in Fig. 12).  Algorithm 1
exploits this to avoid re-running trials for every B:

* a set ``S`` of disjoint ranges ``R_n = [B_lower, B_upper] -> n`` over
  the B domain (here a sorted interval list with O(log |S|) find/insert,
  the paper implements it as a binary search tree);
* a hash ``cache_table`` memoising exact B values already configured;
* ``searchBestGran(B)`` — the expensive trial search, invoked only when
  B falls outside every known range; its result either widens the range
  already mapped to that n or opens a new singleton range.

``evaluate(B, n)`` is injected so the searcher works against simulated
trials (benchmarks) or any user-provided timer (real deployments would
time actual iterations).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence


@dataclass
class _Range:
    lower: int
    upper: int
    n: int


class RangeSet:
    """Disjoint integer ranges mapped to partition counts.

    Maintains ranges sorted by lower bound; ``find`` bisects, ``insert``
    opens a singleton range, ``extend`` widens an n's range to cover a
    new B (clamped against neighbours so disjointness is preserved even
    if the monotonicity hypothesis is violated by a noisy trial).
    """

    def __init__(self) -> None:
        self._ranges: list[_Range] = []

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self):
        return iter((r.lower, r.upper, r.n) for r in self._ranges)

    def find(self, b: int) -> int | None:
        """Return the n whose range contains ``b``, else None (line 6)."""
        idx = bisect.bisect_right(self._lowers(), b) - 1
        if idx >= 0 and self._ranges[idx].lower <= b <= self._ranges[idx].upper:
            return self._ranges[idx].n
        return None

    def range_for(self, n: int) -> tuple[int, int] | None:
        for r in self._ranges:
            if r.n == n:
                return (r.lower, r.upper)
        return None

    def insert(self, b: int, n: int) -> None:
        """Open the singleton range (b, b) -> n (Algorithm 1 lines 10-12)."""
        if self.find(b) is not None:
            raise ValueError(f"B={b} already covered")
        if self.range_for(n) is not None:
            raise ValueError(f"n={n} already has a range; use extend")
        bisect.insort(self._ranges, _Range(b, b, n), key=lambda r: r.lower)

    def extend(self, b: int, n: int) -> None:
        """Widen n's range to include ``b`` (Algorithm 1 lines 13-14).

        The new bounds are min/max with the existing range, clamped so the
        widened range never swallows a neighbouring range's domain.
        """
        idx = next(
            (i for i, r in enumerate(self._ranges) if r.n == n), None
        )
        if idx is None:
            raise KeyError(f"no range for n={n}")
        r = self._ranges[idx]
        new_lower = min(r.lower, b)
        new_upper = max(r.upper, b)
        if idx > 0:
            new_lower = max(new_lower, self._ranges[idx - 1].upper + 1)
        if idx + 1 < len(self._ranges):
            new_upper = min(new_upper, self._ranges[idx + 1].lower - 1)
        r.lower, r.upper = new_lower, new_upper

    def is_disjoint_sorted(self) -> bool:
        """Invariant check used by property tests."""
        for a, b in zip(self._ranges, self._ranges[1:]):
            if a.upper >= b.lower:
                return False
        return all(r.lower <= r.upper for r in self._ranges)

    def _lowers(self) -> list[int]:
        return [r.lower for r in self._ranges]


@dataclass
class SearchStats:
    trials: int = 0
    cache_hits: int = 0
    range_hits: int = 0
    searches: int = 0


class GranularitySearcher:
    """Online configurator: ``configure(B)`` implements Algorithm 1.

    Parameters
    ----------
    evaluate:
        ``evaluate(batch, n) -> cost`` (lower is better); one *trial*.
        Typically a simulated or measured iteration time.
    candidates:
        The n values ``searchBestGran`` tries (powers of two by default;
        candidates that do not divide ``batch`` are skipped).
    """

    def __init__(
        self,
        evaluate: Callable[[int, int], float],
        candidates: Sequence[int] = (1, 2, 4, 8, 16),
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate granularity")
        if any(c < 1 for c in candidates):
            raise ValueError("candidates must be >= 1")
        self.evaluate = evaluate
        self.candidates = tuple(sorted(set(candidates)))
        self.ranges = RangeSet()  # the paper's S
        self.cache_table: dict[int, int] = {}
        self.stats = SearchStats()

    def configure(self, batch: int) -> int:
        """Algorithm 1: optimal n for this batch size."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        # Lines 3-5: exact-B memo.
        if batch in self.cache_table:
            self.stats.cache_hits += 1
            return self.cache_table[batch]
        # Line 6: range lookup.
        n = self.ranges.find(batch)
        if n is not None:
            self.stats.range_hits += 1
        else:
            # Lines 7-15: trial search, then grow/open the range for n.
            n = self.search_best_granularity(batch)
            if self.ranges.range_for(n) is None:
                self.ranges.insert(batch, n)
            else:
                self.ranges.extend(batch, n)
        # Line 17: memoise.
        self.cache_table[batch] = n
        return n

    def search_best_granularity(self, batch: int) -> int:
        """``searchBestGran``: evaluate every candidate by trial, take argmin.

        Divisibility is not required: the layer pads the dispatch capacity
        to a multiple of the chosen n, and the trial evaluator prices the
        padded (ceil) micro-batch.
        """
        self.stats.searches += 1
        best_n, best_cost = None, float("inf")
        for n in self.candidates:
            self.stats.trials += 1
            cost = self.evaluate(batch, n)
            if cost < best_cost:
                best_n, best_cost = n, cost
        return best_n
