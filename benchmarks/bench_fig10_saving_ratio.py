"""Fig. 10 — achieved vs theoretical memory-saving ratio.

Paper: across the three models, n in {2,4,8} and a range of batch
sizes, the measured reduction reaches about 95% of the Eq. 6 bound —
the gap being small tensors (gating/routing data) that the formula
ignores.

The *achieved* side here is a genuine measurement: the functional
pipelined executor runs forward+backward through the caching allocator
with and without reuse, with model states, TI/TO and the small
gating/routing tensors metered alongside.  The *theoretical* side is
Eq. 6 on the same (scaled) layer shape; the functional run scales
d_model down by a constant, which leaves the ratio intact because every
term of Eq. 6 is linear in the tensor sizes.

Each (model, n, B) point is a scenario of one
:class:`~repro.api.ScenarioGrid`, measured by a custom module-level
objective through the :class:`~repro.api.Study` facade (the executor
runs are real work — exactly what the backends' process fan-out and the
on-disk cache exist for).
"""

import numpy as np

from repro.config import MoELayerSpec, get_preset
from repro.core.experts import ExpertFFN
from repro.memory.footprint import FootprintModel
from repro.memory.host_pool import HostBufferPool
from repro.pipeline.executor import PipelinedMoEMiddle
from repro.sim.memory_allocator import CachingAllocator
from repro.api import Scenario, ScenarioGrid, Study
from repro.utils import Table

from conftest import emit, run_once

SCALE = 64  # functional run shrinks d_model/d_hidden by this factor
WORLD, EPER = 4, 2
ITEM = 8  # float64

MODELS = ("GPT-S", "BERT-L", "GPT-XL")
NS = (2, 4, 8)
BATCHES = (4096, 16384, 32768)

GRID = ScenarioGrid(systems=("timeline",), specs=MODELS, ns=NS, batches=BATCHES)


def scaled_probe(spec: MoELayerSpec, batch: int, n: int):
    """Scaled layer shape + matching FootprintModel for theory."""
    m = max(4, spec.d_model // SCALE)
    h = m * (spec.d_hidden // spec.d_model)
    capacity = max(n, (batch // SCALE // (WORLD * EPER)) // n * n)
    rows = WORLD * EPER * capacity  # per-device dispatch rows = "B"
    probe = MoELayerSpec("probe", d_model=m, d_hidden=h,
                         num_experts=WORLD * EPER)
    return probe, capacity, rows


def measure_peak(probe, capacity, rows, n, strategy, seed=0):
    m, h = probe.d_model, probe.d_hidden
    experts = [
        [ExpertFFN(m, h, activation="relu", seed=r * 10 + e) for e in range(EPER)]
        for r in range(WORLD)
    ]
    rng = np.random.default_rng(seed)
    ti = rng.standard_normal((WORLD, WORLD, EPER, capacity, m))
    meter = CachingAllocator()
    per_device_ti = rows * m * ITEM
    states = 4 * (probe.gate_params + EPER * probe.expert_params) * ITEM
    persistent = [
        meter.allocate(states, label="model-states"),
        meter.allocate(per_device_ti, label="TI"),
        meter.allocate(per_device_ti, label="TO"),
        # Small tensors Eq. 6 ignores: gate logits/probs + routing indices.
        meter.allocate(rows * probe.num_experts * ITEM, label="gate-logits"),
        meter.allocate(rows * ITEM, label="routing"),
    ]
    eng = PipelinedMoEMiddle(
        experts, n, strategy, meter=meter, host_pool=HostBufferPool()
    )
    eng.forward(ti.copy())
    eng.backward(rng.standard_normal(ti.shape))
    for handle in persistent:
        meter.free(handle)
    return meter.peak_reserved_bytes


def measure_saving_point(scenario: Scenario) -> dict:
    """Sweep evaluator: Eq. 6 bound vs metered executor saving."""
    spec = get_preset(scenario.spec)
    probe, capacity, rows = scaled_probe(spec, scenario.batch, scenario.n)
    theoretical = FootprintModel(probe, WORLD).saving_ratio(rows, scenario.n)
    peak_none = measure_peak(probe, capacity, rows, scenario.n, "none")
    peak_reuse = measure_peak(probe, capacity, rows, scenario.n, "S4")
    achieved = (peak_none - peak_reuse) / peak_none
    return {"theoretical": theoretical, "achieved": achieved}


def compute():
    results = Study(GRID).objective(measure_saving_point).run()
    by = {
        (r.scenario.spec, r.scenario.n, r.scenario.batch): r for r in results
    }
    rows_out = []
    for model in MODELS:
        for n in NS:
            for batch in BATCHES:
                point = by[(model, n, batch)]
                theoretical = point["theoretical"]
                achieved = point["achieved"]
                rows_out.append(
                    (model, n, batch, theoretical, achieved,
                     achieved / theoretical if theoretical else float("nan"))
                )
    return rows_out


def test_fig10_saving_ratio(benchmark):
    rows = run_once(benchmark, compute)
    table = Table(
        ["model", "n", "B", "theoretical", "achieved", "achieved/theoretical"],
        title="Fig. 10 — memory saving ratio: achieved vs Eq. 6 bound",
    )
    for row in rows:
        table.add_row(row)
    emit("fig10_saving_ratio", table)

    fractions = [r[5] for r in rows if np.isfinite(r[5]) and r[3] > 0.02]
    # Achieved tracks the bound: the paper reports ~95%.  Allocator
    # rounding at tiny scaled capacities can nudge a point slightly
    # above 1.0.
    assert all(0.75 <= f <= 1.05 for f in fractions), fractions
    assert float(np.mean(fractions)) > 0.9
