"""Whole-grid evaluation benchmark: the vectorized sweep fast path.

One measurement with two gates, on a neutral timeline grid of 12,288
scenarios (six template groups — S1 and S4 across the granularity axis
— x 2,048 batches around the paper's B=32k operating point, GPT-S on
8 GPUs):

1. **Byte-identity** — every value the vectorized pass produces must be
   bit-for-bit identical (``struct.pack`` comparison, no tolerance) to
   the memoized per-scenario evaluator's.  The batched path mirrors the
   scalar arithmetic operation for operation and the schedule-replay
   engine re-validates event order per scenario, so this is expected to
   hold exactly.
2. **Throughput** — the vectorized runner must evaluate the grid at
   >= 50x the serial runner's points/second.  The serial baseline runs
   the same ``SweepRunner`` with ``vectorize=False`` on the ``serial``
   backend against a fresh context pool (cold memo, like any first
   sweep).  Both walls are the best of a few repetitions (each one
   memo-cold): the vectorized pass finishes in tens of milliseconds,
   where a single-shot reading is scheduler-noise-dominated and would
   make the gate flaky on shared CI boxes.

Results append to ``benchmarks/results/BENCH_grid.json``.

Run:  PYTHONPATH=src python benchmarks/bench_grid_eval.py [--smoke]
"""

from __future__ import annotations

import argparse
import pathlib
import struct
import sys

from _harness import append_record, timed, utc_timestamp
from repro.sweep import SweepRunner, evaluate_timeline
from repro.sweep.grid import ScenarioGrid
from repro.sweep import runner as runner_mod
from repro.utils import Table

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_grid.json"

SPEC = "GPT-S"
WORLD = 8
#: Six template groups spanning the granularity axis at both ends of
#: the reuse spectrum: S1 at n=(4,8,16), S4 at n=(8,16,32).  These keep
#: stable event orders across a dense batch axis (1-4 replay segments
#: per group).  S2@n=16 and S1@n=32 flip event order dozens of times —
#: replay-segmentation stress cases covered by the byte-identity tests,
#: not a representative whole-grid scan.
TEMPLATES = (("S1", (4, 8, 16)), ("S4", (8, 16, 32)))
#: 2,048 even batches spanning [32768, 36864): a realistic whole-grid
#: scan around the paper's B=32k point.  12,288 scenarios total.
#: The gate's contract is a >= 10k-point grid — the fixed per-group
#: costs (schedule recording, replay segments) only amortize at that
#: scale, so ``--smoke`` runs the same grid; the whole benchmark takes
#: ~10 s, which is already CI-sized.
BATCH_START = 32768
BATCH_COUNT = 2048

SPEEDUP_GATE = 50.0

#: Timing repetitions (best wall wins).  The vectorized pass is ~100x
#: shorter than the serial one, so it gets the extra samples.
VEC_REPS = 3
SERIAL_REPS = 2


def build_grid(args) -> list:
    batches = tuple(range(BATCH_START, BATCH_START + 2 * BATCH_COUNT, 2))
    scenarios = []
    for strategy, ns in TEMPLATES:
        scenarios.extend(
            ScenarioGrid(
                systems=("timeline",),
                specs=(SPEC,),
                world_sizes=(WORLD,),
                batches=batches,
                ns=ns,
                strategies=(strategy,),
            ).scenarios()
        )
    return scenarios


def fresh_contexts() -> None:
    """Empty the shared context pool: every timed run starts memo-cold."""
    with runner_mod._POOL_LOCK:
        runner_mod._CONTEXTS.clear()


def timed_run(runner: SweepRunner, scenarios, reps: int = 1) -> tuple[list, float]:
    """Best-of-``reps`` cold-memo wall; the results of the first rep."""
    results, best = None, float("inf")
    for _ in range(reps):
        fresh_contexts()
        out, wall = timed(runner.run, scenarios)
        results = out if results is None else results
        best = min(best, wall)
    return results, best


def value_bits(values: dict) -> tuple:
    """A hashable bit-exact image of one scenario's values."""
    return tuple(
        (k, struct.pack("<d", v) if isinstance(v, float) else v)
        for k, v in sorted(values.items())
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: same >= 10k-point grid (the gate's "
                             "contract; ~10 s total), tagged in the JSON")
    args = parser.parse_args(argv)

    scenarios = build_grid(args)
    points = len(scenarios)
    groups = ", ".join(f"{s}@n={list(ns)}" for s, ns in TEMPLATES)
    print(f"{points} timeline scenarios ({SPEC} x {WORLD} GPUs, {groups})")

    vectorized = SweepRunner(evaluate_timeline, backend="vectorized")
    serial = SweepRunner(evaluate_timeline, backend="serial", vectorize=False)

    # Warm the process-level caches both paths share (template compilation,
    # spec presets, numpy dispatch) on a thin slice so neither timed run
    # pays first-touch costs the other then inherits.  The scenario memo
    # itself is cleared again before each timed run.
    warmup = scenarios[:: max(1, points // 128)]
    vectorized.run(warmup)
    serial.run(warmup)

    vec_results, vec_wall = timed_run(vectorized, scenarios, reps=VEC_REPS)
    serial_results, serial_wall = timed_run(serial, scenarios, reps=SERIAL_REPS)

    mismatches = sum(
        value_bits(v.values) != value_bits(s.values)
        for v, s in zip(vec_results, serial_results)
    )
    identical = mismatches == 0
    speedup = serial_wall / vec_wall

    table = Table(
        ["path", "wall (s)", "points/s", "us/point"],
        title=f"Whole-grid evaluation, {points} scenarios",
    )
    table.add_row(["serial (memoized)", f"{serial_wall:.3f}",
                   f"{points / serial_wall:,.0f}",
                   f"{serial_wall / points * 1e6:.1f}"])
    table.add_row(["vectorized", f"{vec_wall:.3f}",
                   f"{points / vec_wall:,.0f}",
                   f"{vec_wall / points * 1e6:.2f}"])
    print(table)
    print(f"speedup: {speedup:.1f}x (gate >= {SPEEDUP_GATE:g}x); "
          f"byte-identical: {identical} ({mismatches} mismatches)")

    ok = True
    if not identical:
        print(f"FAIL: {mismatches}/{points} scenarios diverge from the "
              f"memoized evaluator", file=sys.stderr)
        ok = False
    if speedup < SPEEDUP_GATE:
        print(f"FAIL: vectorized speedup {speedup:.1f}x below the "
              f"{SPEEDUP_GATE:g}x gate", file=sys.stderr)
        ok = False

    record = {
        "benchmark": "bench_grid_eval",
        "mode": "smoke" if args.smoke else "full",
        "timestamp": utc_timestamp(),
        "spec": SPEC,
        "world_size": WORLD,
        "points": points,
        "serial_wall_s": serial_wall,
        "vectorized_wall_s": vec_wall,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "byte_identical": identical,
        "mismatches": mismatches,
        "ok": ok,
    }
    append_record(RESULTS_JSON, record)

    if not ok:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
