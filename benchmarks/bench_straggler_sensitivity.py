"""Straggler sensitivity study: how adaptive choices shift under skew.

Two measurements:

1. **Severity sweep** — one GPU of the 64-GPU GPT-XL cluster slows from
   1.0x to 0.4x compute (the ``single-slow-gpu`` scenario, a thermally
   throttled device).  For each severity and batch size the adaptive
   MPipeMoE stack re-runs Algorithm 1 and both strategy selectors on
   the heterogeneous context, and the table shows where the selected
   granularity n and the reuse strategy move.  Gated: at severity 0.5
   and B=24576 the selected n must differ from the healthy cluster —
   the straggler makes compute the bottleneck, so coarser pipelining
   (fewer kernel launches, better GEMM saturation) wins.  Rows for the
   ``degraded-link`` and ``slow-node`` scenarios at matched severities
   show the other two skew regimes (comm-bound and comp+mem-bound).

2. **Hetero grid sweep** — a :class:`ScenarioGrid` crossing straggler
   severity with the new expert-count (E) and capacity-factor axes,
   fanned out on the thread backend so all points share one in-process
   evaluator memo; the reported cache stats come from the per-scenario
   deltas the runner now persists.

Results append to ``benchmarks/results/BENCH_straggler.json``.

Run:  PYTHONPATH=src python benchmarks/bench_straggler_sensitivity.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.config import get_preset
from repro.hardware.hetero import StragglerModel
from repro.api import ScenarioGrid, Study
from repro.systems import MPipeMoEModel
from repro.systems.base import SystemContext
from repro.utils import Table

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_straggler.json"

WORLD = 64
SPEC = "GPT-XL"
#: The acceptance point: a single 0.5x-compute straggler must shift the
#: selected granularity at this batch (healthy n=8 -> straggler n=4).
GATE_BATCH = 24576
GATE_SEVERITY = 0.5

SEVERITIES = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4)
BATCHES = (8192, 16384, 24576, 32768)
SMOKE_SEVERITIES = (1.0, GATE_SEVERITY)
SMOKE_BATCHES = (GATE_BATCH,)


def evaluate_point(kind: str, severity: float, batch: int) -> dict:
    """Adaptive MPipeMoE choices on one (straggler, severity, batch) point."""
    hetero = StragglerModel(kind, severity=severity).build()
    ctx = SystemContext(world_size=WORLD, hetero=hetero)
    spec = get_preset(SPEC)
    report = MPipeMoEModel(ctx).evaluate(spec, batch)
    eq10 = ctx.evaluator.selector(spec).select(batch, report.num_partitions)
    return {
        "straggler": kind,
        "severity": severity,
        "batch": batch,
        "n": report.num_partitions,
        "strategy": report.strategy,
        "eq10_strategy": eq10.strategy.name,
        "iteration_time": report.iteration_time,
    }


def severity_sweep(args) -> tuple[dict, bool]:
    severities = SMOKE_SEVERITIES if args.smoke else SEVERITIES
    batches = SMOKE_BATCHES if args.smoke else BATCHES

    rows = [
        evaluate_point("single-slow-gpu", sev, batch)
        for sev in severities
        for batch in batches
    ]
    if not args.smoke:
        # The other two skew regimes at matched severities, for contrast.
        for kind in ("degraded-link", "slow-node"):
            rows += [
                evaluate_point(kind, sev, GATE_BATCH) for sev in (0.7, 0.5, 0.4)
            ]

    baseline = {
        r["batch"]: r["iteration_time"]
        for r in rows
        if r["straggler"] == "single-slow-gpu" and r["severity"] == 1.0
    }
    table = Table(
        ["straggler", "severity", "B", "n", "strategy", "Eq.10", "time (ms)",
         "slowdown"],
        title=f"Adaptive choices under skew, {SPEC} x {WORLD} GPUs",
    )
    for r in rows:
        base = baseline.get(r["batch"])
        r["slowdown_vs_healthy"] = (
            r["iteration_time"] / base if base else None
        )
        table.add_row([
            r["straggler"], r["severity"], r["batch"], r["n"], r["strategy"],
            r["eq10_strategy"], r["iteration_time"] * 1e3,
            r["slowdown_vs_healthy"] or float("nan"),
        ])
    print(table)

    def pick(sev):
        return next(
            r for r in rows
            if r["straggler"] == "single-slow-gpu"
            and r["severity"] == sev and r["batch"] == GATE_BATCH
        )

    healthy, degraded = pick(1.0), pick(GATE_SEVERITY)
    ok = True
    if degraded["n"] == healthy["n"]:
        print(
            f"FAIL: a {GATE_SEVERITY}x-compute straggler left the selected "
            f"granularity at n={healthy['n']} (B={GATE_BATCH})", file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"granularity shift at B={GATE_BATCH}: n={healthy['n']} (healthy) "
            f"-> n={degraded['n']} ({GATE_SEVERITY}x straggler)"
        )
    payload = {
        "spec": SPEC,
        "world_size": WORLD,
        "gate": {
            "batch": GATE_BATCH,
            "severity": GATE_SEVERITY,
            "healthy_n": healthy["n"],
            "straggler_n": degraded["n"],
            "shifted": degraded["n"] != healthy["n"],
        },
        "rows": rows,
    }
    return payload, ok


def hetero_grid_sweep(args) -> dict:
    """Thread-backend sweep over the straggler / E / capacity-factor axes."""
    if args.smoke:
        grid = ScenarioGrid(
            systems=("mpipemoe",), specs=(SPEC,), world_sizes=(16,),
            batches=(8192,), stragglers=("single-slow-gpu",),
            severities=(1.0, 0.5), num_experts=(64,), capacity_factors=(None,),
        )
    else:
        grid = ScenarioGrid(
            systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
            batches=(16384,), stragglers=("single-slow-gpu", "degraded-link"),
            severities=(1.0, 0.7, 0.4), num_experts=(64, 128),
            capacity_factors=(1.0, 1.25),
        )
    study = Study(grid).backend("thread").workers(args.workers)
    t0 = time.perf_counter()
    results = study.run()
    wall = time.perf_counter() - t0
    print(results.table(
        ["label", "n", "strategy", ("time (s)", "iteration_time")],
        title=f"Hetero grid, {len(results)} scenarios, thread backend",
    ))
    hits = sum(r.cache_stats["hits"] for r in results if r.cache_stats)
    misses = sum(r.cache_stats["misses"] for r in results if r.cache_stats)
    print(f"grid wall: {wall:.2f}s; shared-evaluator hits/misses: "
          f"{hits}/{misses}")
    return {
        "scenarios": len(results),
        "wall_s": wall,
        "evaluator_hits": hits,
        "evaluator_misses": misses,
        "points": [
            {
                "label": r.scenario.label(),
                "n": r["n"],
                "strategy": r["strategy"],
                "iteration_time": r["iteration_time"],
            }
            for r in results
        ],
    }


def emit_json(mode: str, severity_payload: dict, grid_payload: dict) -> None:
    """Append this run's record to the trajectory file (a JSON array)."""
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    record = {
        "benchmark": "bench_straggler_sensitivity",
        "mode": mode,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "severity_sweep": severity_payload,
        "hetero_grid": grid_payload,
    }
    history: list = []
    if RESULTS_JSON.is_file():
        try:
            previous = json.loads(RESULTS_JSON.read_text())
            if isinstance(previous, list):
                history = previous
        except (OSError, json.JSONDecodeError):
            pass  # unreadable trajectory: restart it rather than crash
    history.append(record)
    RESULTS_JSON.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    print(f"appended run {len(history)} to {RESULTS_JSON}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI (gate still checked)")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pool width for the grid sweep")
    args = parser.parse_args(argv)

    severity_payload, ok = severity_sweep(args)
    grid_payload = hetero_grid_sweep(args)
    emit_json("smoke" if args.smoke else "full", severity_payload, grid_payload)

    if not ok:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
