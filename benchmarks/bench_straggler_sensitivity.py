"""Straggler sensitivity study: how adaptive choices shift under skew.

Two measurements:

1. **Severity sweep** — one GPU of the 64-GPU GPT-XL cluster slows from
   1.0x to 0.4x compute (the ``single-slow-gpu`` scenario, a thermally
   throttled device).  For each severity and batch size the adaptive
   MPipeMoE stack re-runs Algorithm 1 and both strategy selectors on
   the heterogeneous context, and the table shows where the selected
   granularity n and the reuse strategy move.  Gated: at severity 0.5
   and B=24576 the selected n must differ from the healthy cluster —
   the straggler makes compute the bottleneck, so coarser pipelining
   (fewer kernel launches, better GEMM saturation) wins.  Rows for the
   ``degraded-link`` and ``slow-node`` scenarios at matched severities
   show the other two skew regimes (comm-bound and comp+mem-bound).

2. **Hetero grid sweep** — a :class:`ScenarioGrid` crossing straggler
   severity with the new expert-count (E) and capacity-factor axes,
   fanned out on the thread backend so all points share one in-process
   evaluator memo; the reported cache stats come from the per-scenario
   deltas the runner now persists.

3. **Placement recovery** — the headline for the skew-aware placement
   optimizer: at the gate point (B=24576, 0.5x single-slow-gpu, 4x-hot
   gating) the contiguous shard map puts the hot expert on the slow
   rank and eats the full straggler regression; ``placement="optimized"``
   re-routes the heat onto healthy metal.  Gated: the optimized
   placement must recover at least half of the straggler regression
   (measured fraction is typically 1.0 — the bottleneck returns to the
   healthy hot-rank price because the slow rank only hosts cold
   experts).  Appends to ``benchmarks/results/BENCH_placement.json``.

Results append to ``benchmarks/results/BENCH_straggler.json``.

Run:  PYTHONPATH=src python benchmarks/bench_straggler_sensitivity.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.config import get_preset
from repro.hardware.hetero import StragglerModel
from repro.api import ScenarioGrid, Study
from repro.systems import MPipeMoEModel
from repro.systems.base import SystemContext
from repro.utils import Table

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_straggler.json"
PLACEMENT_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_placement.json"

WORLD = 64
SPEC = "GPT-XL"
#: The acceptance point: a single 0.5x-compute straggler must shift the
#: selected granularity at this batch (healthy n=8 -> straggler n=4).
GATE_BATCH = 24576
GATE_SEVERITY = 0.5
#: Hot-expert load ratio at the placement gate point: skew is what makes
#: placement matter (uniform routing prices identically everywhere).
PLACEMENT_IMBALANCE = 4.0
#: The optimized placement must claw back at least this fraction of the
#: straggler regression, (T_straggler - T_optimized) / (T_straggler -
#: T_healthy).
PLACEMENT_MIN_RECOVERY = 0.5

SEVERITIES = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4)
BATCHES = (8192, 16384, 24576, 32768)
SMOKE_SEVERITIES = (1.0, GATE_SEVERITY)
SMOKE_BATCHES = (GATE_BATCH,)


def evaluate_point(kind: str, severity: float, batch: int) -> dict:
    """Adaptive MPipeMoE choices on one (straggler, severity, batch) point."""
    hetero = StragglerModel(kind, severity=severity).build()
    ctx = SystemContext(world_size=WORLD, hetero=hetero)
    spec = get_preset(SPEC)
    report = MPipeMoEModel(ctx).evaluate(spec, batch)
    eq10 = ctx.evaluator.selector(spec).select(batch, report.num_partitions)
    return {
        "straggler": kind,
        "severity": severity,
        "batch": batch,
        "n": report.num_partitions,
        "strategy": report.strategy,
        "eq10_strategy": eq10.strategy.name,
        "iteration_time": report.iteration_time,
    }


def severity_sweep(args) -> tuple[dict, bool]:
    severities = SMOKE_SEVERITIES if args.smoke else SEVERITIES
    batches = SMOKE_BATCHES if args.smoke else BATCHES

    rows = [
        evaluate_point("single-slow-gpu", sev, batch)
        for sev in severities
        for batch in batches
    ]
    if not args.smoke:
        # The other two skew regimes at matched severities, for contrast.
        for kind in ("degraded-link", "slow-node"):
            rows += [
                evaluate_point(kind, sev, GATE_BATCH) for sev in (0.7, 0.5, 0.4)
            ]

    baseline = {
        r["batch"]: r["iteration_time"]
        for r in rows
        if r["straggler"] == "single-slow-gpu" and r["severity"] == 1.0
    }
    table = Table(
        ["straggler", "severity", "B", "n", "strategy", "Eq.10", "time (ms)",
         "slowdown"],
        title=f"Adaptive choices under skew, {SPEC} x {WORLD} GPUs",
    )
    for r in rows:
        base = baseline.get(r["batch"])
        r["slowdown_vs_healthy"] = (
            r["iteration_time"] / base if base else None
        )
        table.add_row([
            r["straggler"], r["severity"], r["batch"], r["n"], r["strategy"],
            r["eq10_strategy"], r["iteration_time"] * 1e3,
            r["slowdown_vs_healthy"] or float("nan"),
        ])
    print(table)

    def pick(sev):
        return next(
            r for r in rows
            if r["straggler"] == "single-slow-gpu"
            and r["severity"] == sev and r["batch"] == GATE_BATCH
        )

    healthy, degraded = pick(1.0), pick(GATE_SEVERITY)
    ok = True
    if degraded["n"] == healthy["n"]:
        print(
            f"FAIL: a {GATE_SEVERITY}x-compute straggler left the selected "
            f"granularity at n={healthy['n']} (B={GATE_BATCH})", file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"granularity shift at B={GATE_BATCH}: n={healthy['n']} (healthy) "
            f"-> n={degraded['n']} ({GATE_SEVERITY}x straggler)"
        )
    payload = {
        "spec": SPEC,
        "world_size": WORLD,
        "gate": {
            "batch": GATE_BATCH,
            "severity": GATE_SEVERITY,
            "healthy_n": healthy["n"],
            "straggler_n": degraded["n"],
            "shifted": degraded["n"] != healthy["n"],
        },
        "rows": rows,
    }
    return payload, ok


def hetero_grid_sweep(args) -> dict:
    """Thread-backend sweep over the straggler / E / capacity-factor axes."""
    if args.smoke:
        grid = ScenarioGrid(
            systems=("mpipemoe",), specs=(SPEC,), world_sizes=(16,),
            batches=(8192,), stragglers=("single-slow-gpu",),
            severities=(1.0, 0.5), num_experts=(64,), capacity_factors=(None,),
        )
    else:
        grid = ScenarioGrid(
            systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
            batches=(16384,), stragglers=("single-slow-gpu", "degraded-link"),
            severities=(1.0, 0.7, 0.4), num_experts=(64, 128),
            capacity_factors=(1.0, 1.25),
        )
    study = Study(grid).backend("thread").workers(args.workers)
    t0 = time.perf_counter()
    results = study.run()
    wall = time.perf_counter() - t0
    print(results.table(
        ["label", "n", "strategy", ("time (s)", "iteration_time")],
        title=f"Hetero grid, {len(results)} scenarios, thread backend",
    ))
    hits = sum(r.cache_stats["hits"] for r in results if r.cache_stats)
    misses = sum(r.cache_stats["misses"] for r in results if r.cache_stats)
    print(f"grid wall: {wall:.2f}s; shared-evaluator hits/misses: "
          f"{hits}/{misses}")
    return {
        "scenarios": len(results),
        "wall_s": wall,
        "evaluator_hits": hits,
        "evaluator_misses": misses,
        "points": [
            {
                "label": r.scenario.label(),
                "n": r["n"],
                "strategy": r["strategy"],
                "iteration_time": r["iteration_time"],
            }
            for r in results
        ],
    }


def placement_recovery(args) -> tuple[dict, bool]:
    """The optimized-placement headline: recover the straggler regression.

    Three points at the gate geometry (GPT-XL x 64 GPUs, B=24576, 4x-hot
    gating): healthy cluster, 0.5x single-slow-gpu under the contiguous
    default (hot expert on the slow rank — worst case), and the same
    straggler with ``placement="optimized"``.  Every point goes through
    the public sweep evaluator, so the optimizer lowering, the per-rank
    pricing, and the traffic-aware selector are all on the measured path.
    """
    from repro.sweep.grid import Scenario
    from repro.sweep.runner import evaluate_system, scenario_workload

    base = dict(
        system="mpipemoe", spec=SPEC, world_size=WORLD,
        batch=GATE_BATCH, imbalance=PLACEMENT_IMBALANCE,
    )
    straggler = dict(straggler="single-slow-gpu", severity=GATE_SEVERITY)
    healthy = evaluate_system(Scenario(**base))
    degraded = evaluate_system(Scenario(**base, **straggler))
    optimized_sc = Scenario(**base, **straggler, placement="optimized")
    optimized = evaluate_system(optimized_sc)

    t_h = healthy["iteration_time"]
    t_d = degraded["iteration_time"]
    t_o = optimized["iteration_time"]
    regression = t_d - t_h
    recovery = (t_d - t_o) / regression if regression > 0 else 0.0

    table = Table(
        ["cluster", "placement", "n", "strategy", "time (ms)"],
        title=f"Placement recovery, {SPEC} x {WORLD} GPUs, "
              f"B={GATE_BATCH}, {PLACEMENT_IMBALANCE:g}x-hot gating",
    )
    table.add_row(["healthy", "contiguous", healthy["n"],
                   healthy["strategy"], t_h * 1e3])
    table.add_row([f"{GATE_SEVERITY}x slow GPU", "contiguous",
                   degraded["n"], degraded["strategy"], t_d * 1e3])
    table.add_row([f"{GATE_SEVERITY}x slow GPU", "optimized",
                   optimized["n"], optimized["strategy"], t_o * 1e3])
    print(table)

    ok = True
    if regression <= 0:
        print(
            f"FAIL: the {GATE_SEVERITY}x straggler caused no regression "
            f"to recover (healthy {t_h * 1e3:.3f}ms, straggler "
            f"{t_d * 1e3:.3f}ms)", file=sys.stderr,
        )
        ok = False
    elif recovery < PLACEMENT_MIN_RECOVERY:
        print(
            f"FAIL: optimized placement recovered only {recovery:.1%} of "
            f"the straggler regression (gate: >= "
            f"{PLACEMENT_MIN_RECOVERY:.0%})", file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"optimized placement recovered {recovery:.1%} of the "
            f"{regression * 1e3:.3f}ms straggler regression "
            f"(gate: >= {PLACEMENT_MIN_RECOVERY:.0%})"
        )
    assignment = scenario_workload(optimized_sc).placement.assignment
    payload = {
        "spec": SPEC,
        "world_size": WORLD,
        "batch": GATE_BATCH,
        "severity": GATE_SEVERITY,
        "imbalance": PLACEMENT_IMBALANCE,
        "healthy_time": t_h,
        "straggler_time": t_d,
        "optimized_time": t_o,
        "regression": regression,
        "recovery": recovery,
        "min_recovery": PLACEMENT_MIN_RECOVERY,
        "passed": ok,
        "hot_expert_rank": assignment[0],
        "slow_rank_experts": sum(1 for r in assignment if r == 0),
    }
    return payload, ok


def emit_placement_json(mode: str, payload: dict) -> None:
    """Append the placement-gate record to its own trajectory file."""
    PLACEMENT_JSON.parent.mkdir(exist_ok=True)
    record = {
        "benchmark": "bench_straggler_sensitivity/placement",
        "mode": mode,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **payload,
    }
    history: list = []
    if PLACEMENT_JSON.is_file():
        try:
            previous = json.loads(PLACEMENT_JSON.read_text())
            if isinstance(previous, list):
                history = previous
        except (OSError, json.JSONDecodeError):
            pass  # unreadable trajectory: restart it rather than crash
    history.append(record)
    PLACEMENT_JSON.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    print(f"appended run {len(history)} to {PLACEMENT_JSON}")


def emit_json(mode: str, severity_payload: dict, grid_payload: dict) -> None:
    """Append this run's record to the trajectory file (a JSON array)."""
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    record = {
        "benchmark": "bench_straggler_sensitivity",
        "mode": mode,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "severity_sweep": severity_payload,
        "hetero_grid": grid_payload,
    }
    history: list = []
    if RESULTS_JSON.is_file():
        try:
            previous = json.loads(RESULTS_JSON.read_text())
            if isinstance(previous, list):
                history = previous
        except (OSError, json.JSONDecodeError):
            pass  # unreadable trajectory: restart it rather than crash
    history.append(record)
    RESULTS_JSON.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    print(f"appended run {len(history)} to {RESULTS_JSON}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI (gate still checked)")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pool width for the grid sweep")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    severity_payload, ok = severity_sweep(args)
    grid_payload = hetero_grid_sweep(args)
    placement_payload, placement_ok = placement_recovery(args)
    emit_json(mode, severity_payload, grid_payload)
    emit_placement_json(mode, placement_payload)

    if not (ok and placement_ok):
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
