"""Fig. 13 — overhead of the memory reusing strategies.

Paper: overhead (%) of S1-S4 and of MPipeMoE's adaptive selection over
the no-reuse pipeline, for N in {8, 16, 32, 64} GPUs and B in
{4k, 8k, 16k}.  Published observations reproduced as assertions:

* S1/S2 do better at small N, worse at large N (PCIe copies collide
  with the growing communication);
* S4 beats S2 at N in {32, 64} where communication is the bottleneck;
* no single strategy wins everywhere;
* the adaptive selection tracks the best strategy per configuration.

The (N x B x strategy) study concatenates two grids — the no-reuse
PipeMoE baseline and the mpipemoe strategy axis (``None`` = adaptive).
"""

from repro.api import ScenarioGrid, Study
from repro.utils import Table

from conftest import emit, run_once

WORLDS = (8, 16, 32, 64)
BATCHES = (4096, 8192, 16384)
STRATS = ("S1", "S2", "S3", "S4")
FIXED_N = 4

GRID = (
    ScenarioGrid(
        systems=("pipemoe",), world_sizes=WORLDS, batches=BATCHES, ns=(FIXED_N,)
    )
    + ScenarioGrid(
        systems=("mpipemoe",), world_sizes=WORLDS, batches=BATCHES,
        ns=(FIXED_N,), strategies=STRATS + (None,),
    )
)


def compute():
    results = Study(GRID).run()
    by = {
        (r.scenario.system, r.scenario.world_size, r.scenario.batch,
         r.scenario.strategy): r
        for r in results
    }
    rows = []
    for world in WORLDS:
        for batch in BATCHES:
            t0 = by[("pipemoe", world, batch, None)]["iteration_time"]
            overheads = {
                s: 100.0
                * (by[("mpipemoe", world, batch, s)]["iteration_time"] / t0 - 1)
                for s in STRATS
            }
            rep = by[("mpipemoe", world, batch, None)]
            rows.append(
                (world, batch, overheads,
                 100.0 * (rep["iteration_time"] / t0 - 1), rep["strategy"])
            )
    return rows


def test_fig13_strategy_overhead(benchmark):
    rows = run_once(benchmark, compute)
    table = Table(
        ["(N, B)", "S1", "S2", "S3", "S4", "MPipeMoE", "selected"],
        title="Fig. 13 — overhead (%) of memory reusing strategies",
    )
    for world, batch, overheads, adaptive, selected in rows:
        table.add_row(
            [f"({world},{batch // 1024}k)", *(overheads[s] for s in STRATS),
             adaptive, selected]
        )
    emit("fig13_strategy_overhead", table)

    def mean_overhead(strategy, world):
        vals = [o[strategy] for w, _, o, _, _ in rows if w == world]
        return sum(vals) / len(vals)

    # Recompute-based restoration (S3) beats comm+offload restoration (S2)
    # at 32/64 GPUs, where communication is expensive; the reverse regime
    # holds at 8 GPUs (compute-bound, recompute costly) — the paper's
    # observations 2 and 3.  (Deviation from the paper: S4 also carries an
    # extra All-to-All, which our single-comm-lane simulator prices higher
    # than the paper measured; see EXPERIMENTS.md.)
    for world in (32, 64):
        assert mean_overhead("S3", world) <= mean_overhead("S2", world), world
    assert mean_overhead("S2", 8) <= mean_overhead("S3", 8)
    # S2 (and S4) degrade as N grows: extra communication rides the
    # increasingly expensive All-to-All path.
    for s in ("S2", "S4"):
        assert mean_overhead(s, 8) <= mean_overhead(s, 64), s
    # No single strategy is best everywhere...
    winners = {min(o, key=o.get) for _, _, o, _, _ in rows}
    assert len(winners) >= 2, winners
    # ...and the adaptive selection tracks the best fixed strategy.
    for world, batch, overheads, adaptive, _ in rows:
        assert adaptive <= min(overheads.values()) + 5.0, (world, batch)
    # Overheads stay bounded (the paper's y-axis tops out around 25%).
    for _, _, overheads, _, _ in rows:
        assert all(v < 50.0 for v in overheads.values())
