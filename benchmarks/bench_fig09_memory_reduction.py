"""Fig. 9 — memory footprint reduction by MPipeMoE.

Paper: bars of per-device memory normalized to FastMoE for FastMoE /
FasterMoE / PipeMoE / MPipeMoE, plus the speedup polyline of MPipeMoE
against FastMoE and FasterMoE, across 9 (model, batch) configs.
Headline numbers: average 23% / up to 40% reduction vs FastMoE; average
27% / up to 47% vs FasterMoE; while keeping >1x speedup.

One rectangular :class:`~repro.api.ScenarioGrid` covers all four
systems; the normalization/speedup arithmetic reads the study results.
"""

from repro.api import ScenarioGrid, Study
from repro.utils import Table

from conftest import emit, run_once

MODELS = ("GPT-S", "BERT-L", "GPT-XL")
BATCHES = (4096, 8192, 16384)

GRID = ScenarioGrid(
    systems=("fastmoe", "fastermoe", "pipemoe", "mpipemoe"),
    specs=MODELS,
    batches=BATCHES,
)


def compute():
    results = Study(GRID).run()
    by = {
        (r.scenario.system, r.scenario.spec, r.scenario.batch): r for r in results
    }
    rows = []
    for model in MODELS:
        for batch in BATCHES:
            f = by[("fastmoe", model, batch)]
            fr = by[("fastermoe", model, batch)]
            p = by[("pipemoe", model, batch)]
            m = by[("mpipemoe", model, batch)]
            rows.append(
                (
                    f"{model}({batch // 1024}k)",
                    1.0,
                    fr["peak_memory_bytes"] / f["peak_memory_bytes"],
                    p["peak_memory_bytes"] / f["peak_memory_bytes"],
                    m["peak_memory_bytes"] / f["peak_memory_bytes"],
                    f["iteration_time"] / m["iteration_time"],
                    fr["iteration_time"] / m["iteration_time"],
                    m["strategy"],
                )
            )
    return rows


def test_fig09_memory_reduction(benchmark):
    rows = run_once(benchmark, compute)
    table = Table(
        [
            "config", "FastMoE", "FasterMoE", "PipeMoE", "MPipeMoE",
            "speedup_vs_FastMoE", "speedup_vs_FasterMoE", "strategy",
        ],
        title="Fig. 9 — normalized memory footprint (vs FastMoE) + MPipeMoE speedup",
    )
    for row in rows:
        table.add_row(row)
    emit("fig09_memory_reduction", table)

    mem_vs_fast = [r[4] for r in rows]
    mem_vs_faster = [r[4] / r[2] for r in rows]
    # FasterMoE always needs more memory than FastMoE (shadowing).
    assert all(r[2] > 1.0 for r in rows)
    # MPipeMoE reduces memory vs FastMoE everywhere; meaningfully at 16k.
    assert all(m < 1.0 for m in mem_vs_fast)
    assert min(mem_vs_fast) < 0.75  # "up to 40%" — shape, not exact
    # Reduction vs FasterMoE is strictly larger (paper: up to 47%).
    assert min(mem_vs_faster) < min(mem_vs_fast)
    # MPipeMoE stays faster than both baselines despite reuse overhead.
    assert all(r[5] > 1.0 and r[6] > 1.0 for r in rows)
