"""Routing-axes study: how top-k, activation dtype and gating skew move
the adaptive choices.

Three measurements:

1. **Imbalance sweep** — the hottest expert of the 64-GPU GPT-XL
   cluster draws 1x..8x its balanced share (`WorkloadSpec.imbalance`).
   At one-expert-per-GPU scale the hot device receives that multiple of
   its rows, so the adaptive MPipeMoE stack re-runs Algorithm 1 and the
   strategy selectors on inflated bottleneck rows.  Gated: at B=8192 a
   4x-hot expert must shift the selected (n, strategy) pair — skew acts
   like a bigger batch, so the granularity coarsens (n=4 -> 8; at
   B=4096 the strategy flips S3 -> S1 as well).

2. **Top-k / dtype table** — the paper's "increasing k is an
   equivalence of increasing B" claim checked in the perf model
   (makespan at (B, k=2) must equal (2B, k=1) bit for bit), and the
   activation-dtype axis (fp8 / fp16 / fp32) moving the comm-bound
   points.

3. **Routing grid sweep** — a :class:`ScenarioGrid` crossing the new
   ``top_ks`` / ``dtypes`` / ``imbalances`` axes with capacity factors
   on the thread backend, reporting per-expert overflow and
   hottest-expert capacity pressure from the workload model.

Results append to ``benchmarks/results/BENCH_routing.json``.

Run:  PYTHONPATH=src python benchmarks/bench_routing_axes.py [--smoke]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from _harness import append_record, timed, utc_timestamp
from repro.api import ScenarioGrid, Study
from repro.config import get_preset
from repro.perfmodel.workload import WorkloadSpec
from repro.sweep import scenario_workload
from repro.systems import MPipeMoEModel
from repro.systems.base import SystemContext
from repro.utils import Table

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_routing.json"

WORLD = 64
SPEC = "GPT-XL"
#: The acceptance point: a 4x-hot expert must shift the adaptive
#: (n, strategy) choice at this batch (healthy n=4 -> skewed n=8).
GATE_BATCH = 8192
GATE_IMBALANCE = 4.0

IMBALANCES = (1.0, 2.0, 4.0, 8.0)
BATCHES = (4096, 8192, 16384)
SMOKE_IMBALANCES = (1.0, GATE_IMBALANCE)
SMOKE_BATCHES = (GATE_BATCH,)


def evaluate_point(imbalance: float, batch: int) -> dict:
    """Adaptive MPipeMoE choices on one (imbalance, batch) point."""
    workload = None if imbalance == 1.0 else WorkloadSpec(imbalance=imbalance)
    ctx = SystemContext(world_size=WORLD)
    spec = get_preset(SPEC)
    report = MPipeMoEModel(ctx).evaluate(spec, batch, workload=workload)
    eq10 = ctx.evaluator.selector(spec, workload).select(
        batch, report.num_partitions
    )
    rows = (workload or WorkloadSpec()).load(spec, batch, WORLD).device_rows
    return {
        "imbalance": imbalance,
        "batch": batch,
        "device_rows": rows,
        "n": report.num_partitions,
        "strategy": report.strategy,
        "eq10_strategy": eq10.strategy.name,
        "iteration_time": report.iteration_time,
    }


def imbalance_sweep(args) -> tuple[dict, bool]:
    imbalances = SMOKE_IMBALANCES if args.smoke else IMBALANCES
    batches = SMOKE_BATCHES if args.smoke else BATCHES

    rows = [
        evaluate_point(imb, batch) for imb in imbalances for batch in batches
    ]
    baseline = {
        r["batch"]: r["iteration_time"] for r in rows if r["imbalance"] == 1.0
    }
    table = Table(
        ["skew", "B", "bottleneck rows", "n", "strategy", "Eq.10",
         "time (ms)", "slowdown"],
        title=f"Adaptive choices under gating skew, {SPEC} x {WORLD} GPUs",
    )
    for r in rows:
        base = baseline.get(r["batch"])
        r["slowdown_vs_uniform"] = r["iteration_time"] / base if base else None
        table.add_row([
            r["imbalance"], r["batch"], r["device_rows"], r["n"],
            r["strategy"], r["eq10_strategy"], r["iteration_time"] * 1e3,
            r["slowdown_vs_uniform"] or float("nan"),
        ])
    print(table)

    def pick(imb):
        return next(
            r for r in rows
            if r["imbalance"] == imb and r["batch"] == GATE_BATCH
        )

    uniform, skewed = pick(1.0), pick(GATE_IMBALANCE)
    shifted = (skewed["n"], skewed["strategy"]) != (
        uniform["n"], uniform["strategy"]
    )
    ok = True
    if not shifted:
        print(
            f"FAIL: a {GATE_IMBALANCE}x-hot expert left the selection at "
            f"(n={uniform['n']}, {uniform['strategy']}) at B={GATE_BATCH}",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"selection shift at B={GATE_BATCH}: "
            f"(n={uniform['n']}, {uniform['strategy']}) uniform -> "
            f"(n={skewed['n']}, {skewed['strategy']}) at "
            f"{GATE_IMBALANCE}x skew"
        )
    payload = {
        "spec": SPEC,
        "world_size": WORLD,
        "gate": {
            "batch": GATE_BATCH,
            "imbalance": GATE_IMBALANCE,
            "uniform": [uniform["n"], uniform["strategy"]],
            "skewed": [skewed["n"], skewed["strategy"]],
            "shifted": shifted,
        },
        "rows": rows,
    }
    return payload, ok


def topk_dtype_table(args) -> tuple[dict, bool]:
    """The k = B-scaling equivalence and the dtype axis, via the memo."""
    ctx = SystemContext(world_size=WORLD)
    spec = get_preset(SPEC)
    batch = GATE_BATCH
    ev = ctx.evaluator

    at_k2 = ev.makespan(spec, batch, 4, "S1", workload=WorkloadSpec(top_k=2))
    at_2b = ev.makespan(spec, 2 * batch, 4, "S1",
                        workload=WorkloadSpec(top_k=1))
    equivalent = at_k2 == at_2b

    dtype_rows = []
    for dtype in ("fp8", "fp16", "fp32"):
        span = ev.makespan(
            spec, batch, 4, "S1", workload=WorkloadSpec.for_dtype(dtype)
        )
        dtype_rows.append({"dtype": dtype, "makespan": span})

    table = Table(
        ["quantity", "value"],
        title=f"Top-k and dtype axes, {SPEC} B={batch} n=4 S1",
    )
    table.add_row(["(B, k=2) makespan", f"{at_k2 * 1e3:.3f} ms"])
    table.add_row(["(2B, k=1) makespan", f"{at_2b * 1e3:.3f} ms"])
    table.add_row(["k == B-scaling equivalence", str(equivalent)])
    for r in dtype_rows:
        table.add_row([f"makespan @ {r['dtype']}", f"{r['makespan'] * 1e3:.3f} ms"])
    print(table)

    ok = True
    if not equivalent:
        print(
            f"FAIL: makespan(B, k=2)={at_k2} != makespan(2B, k=1)={at_2b}",
            file=sys.stderr,
        )
        ok = False
    return {
        "batch": batch,
        "k2_makespan": at_k2,
        "doubled_b_makespan": at_2b,
        "equivalent": equivalent,
        "dtypes": dtype_rows,
    }, ok


def routing_grid_sweep(args) -> dict:
    """Thread-backend sweep over the top-k / dtype / imbalance axes."""
    if args.smoke:
        grid = ScenarioGrid(
            systems=("mpipemoe",), specs=(SPEC,), world_sizes=(16,),
            batches=(8192,), top_ks=(None, 2), imbalances=(1.0, 4.0),
        )
    else:
        grid = ScenarioGrid(
            systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
            batches=(8192,), top_ks=(None, 2), dtypes=(None, "fp32"),
            imbalances=(1.0, 4.0), capacity_factors=(None, 1.25),
        )
    study = Study(grid).backend("thread").workers(args.workers)
    results, wall = timed(study.run)
    print(results.table(
        ["label", "n", "strategy", ("time (s)", "iteration_time")],
        title=f"Routing grid, {len(results)} scenarios, thread backend",
    ))
    spec = get_preset(SPEC)
    points = []
    for r in results:
        workload = scenario_workload(r.scenario)
        load = (
            workload.load(spec, r.scenario.batch, r.scenario.world_size)
            if workload is not None
            else None
        )
        points.append({
            "label": r.scenario.label(),
            "n": r["n"],
            "strategy": r["strategy"],
            "iteration_time": r["iteration_time"],
            "device_rows": load.device_rows if load else r.scenario.batch,
            "overflow_rows": load.overflow_rows if load else 0,
            "hot_pressure": load.hot_pressure if load else None,
        })
    dropped = [p for p in points if p["overflow_rows"]]
    print(
        f"grid wall: {wall:.2f}s; {len(dropped)}/{len(points)} points drop "
        f"tokens at their capacity factor"
    )
    return {"scenarios": len(results), "wall_s": wall, "points": points}


def emit_json(mode: str, imbalance_payload: dict, topk_payload: dict,
              grid_payload: dict) -> None:
    """Append this run's record to the trajectory file (a JSON array)."""
    record = {
        "benchmark": "bench_routing_axes",
        "mode": mode,
        "timestamp": utc_timestamp(),
        "imbalance_sweep": imbalance_payload,
        "topk_dtype": topk_payload,
        "routing_grid": grid_payload,
    }
    append_record(RESULTS_JSON, record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI (gates still checked)")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pool width for the grid sweep")
    args = parser.parse_args(argv)

    imbalance_payload, ok_shift = imbalance_sweep(args)
    topk_payload, ok_equiv = topk_dtype_table(args)
    grid_payload = routing_grid_sweep(args)
    emit_json("smoke" if args.smoke else "full", imbalance_payload,
              topk_payload, grid_payload)

    if not (ok_shift and ok_equiv):
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
