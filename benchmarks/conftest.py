"""Benchmark-harness plumbing.

Every ``bench_figXX_*.py`` regenerates one table/figure of the paper's
evaluation (Sec. V).  Results are printed and also persisted to
``benchmarks/results/<name>.txt`` so a ``--benchmark-only`` run leaves
the full set of paper-style tables on disk; EXPERIMENTS.md summarises
them against the published curves.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.utils import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, table: Table) -> str:
    """Print a figure's table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")
    return text


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The quantities of interest are *simulated* times computed by ``fn``;
    wall-clock timing of the harness itself only needs one round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def paper_world():
    """The paper's full testbed: 8 nodes x 8 A100s."""
    from repro.systems.base import SystemContext

    return SystemContext(world_size=64)
