"""Simulation fast-path speedup benchmarks.

Two measurements, both gated:

1. **Engine benchmark** — builds a large synthetic multi-device
   MoE-style DAG (per-device S/C/R micro-op chains on comm/comp/mem
   lanes with periodic cross-device barriers — the shape
   ``build_timeline`` produces, scaled to cluster size), runs it through
   both the production :class:`SimEngine` and the retained
   :class:`ReferenceSimEngine`, and reports wall-clock speedup.  The two
   engines must agree on the makespan to 1e-9; in full mode the fast
   path must be at least 5x faster on the 10k-op DAG.

2. **Selector-loop benchmark** — times ``MPipeMoE.evaluate`` over a
   batch/n grid twice: once with the context's memoized evaluator
   disabled (the seed path: fresh stage costs, fresh Op DAG and a fully
   recorded run for every granularity/strategy probe) and once with the
   shared evaluator + compiled-timeline fast path.  Reports must be
   identical; in full mode the fast path must be at least 3x faster.
   Results are appended to ``benchmarks/results/BENCH_evaluate.json`` so
   the perf trajectory of the evaluation hot path is recorded over time.

``--quick`` shrinks both workloads for CI smoke runs and only checks
agreement (the JSON is still emitted, tagged ``"mode": "quick"``).

Run:  PYTHONPATH=src python benchmarks/bench_sim_engine.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro.config import get_preset
from repro.hardware.interference import StreamKind
from repro.sim.engine import Op, ReferenceSimEngine, SimEngine
from repro.systems import MPipeMoEModel
from repro.systems.base import SystemContext
from repro.utils import Table

REQUIRED_SPEEDUP = 5.0
REQUIRED_EVALUATE_SPEEDUP = 3.0
RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_evaluate.json"

#: The selector-loop grid: adaptive granularity plus pinned-n variants,
#: swept over the batch axis (GPT-XL at the paper's 64 GPUs).
EVAL_BATCHES = (2048, 4096, 6144, 8192, 12288, 16384, 24576, 32768)
EVAL_NS = (None, 2, 4, 8)
QUICK_EVAL_BATCHES = (4096, 16384)
QUICK_EVAL_NS = (None, 4)


def build_dag(num_ops: int, devices: int, seed: int = 0) -> list[Op]:
    """Deterministic layered DAG of ~``num_ops`` ops across ``devices``."""
    rng = random.Random(seed)
    ops: list[Op] = []
    barrier = None
    stage = 0
    while len(ops) < num_ops:
        stage_r: list[Op] = []
        for dev in range(devices):
            s_deps = (barrier,) if barrier is not None else ()
            s = Op(f"S{stage}d{dev}", dev, StreamKind.COMM,
                   rng.uniform(0.5, 1.5), s_deps, tag="S")
            c = Op(f"C{stage}d{dev}", dev, StreamKind.COMP,
                   rng.uniform(1.0, 3.0), (s,), tag="C")
            r = Op(f"R{stage}d{dev}", dev, StreamKind.COMM,
                   rng.uniform(0.5, 1.5), (c,), tag="R")
            ops += [s, c, r]
            stage_r.append(r)
            if rng.random() < 0.3:
                ops.append(
                    Op(f"D{stage}d{dev}", dev, StreamKind.MEM,
                       rng.uniform(0.2, 1.0), (c,), tag="D")
                )
        # Cross-device sync every few stages, like an optimizer step or
        # the loss boundary between forward and backward.
        if stage % 4 == 3:
            barrier = Op(f"B{stage}", 0, StreamKind.COMP, 0.0,
                         tuple(stage_r), tag="X")
            ops.append(barrier)
        stage += 1
    return ops


def time_engine(engine, ops: list[Op]) -> tuple[float, float]:
    """(wall seconds, simulated makespan) of one run."""
    t0 = time.perf_counter()
    result = engine.run(ops)
    return time.perf_counter() - t0, result.makespan


def engine_benchmark(args) -> tuple[dict, bool]:
    """Fast event-heap engine vs the reference fluid loop."""
    num_ops = 2_000 if args.quick else args.ops
    ops = build_dag(num_ops, args.devices, args.seed)
    print(f"DAG: {len(ops)} ops on {args.devices} devices "
          f"({'quick' if args.quick else 'full'} mode)")

    fast_wall, fast_makespan = time_engine(SimEngine(), ops)
    ref_wall, ref_makespan = time_engine(ReferenceSimEngine(), ops)
    speedup = ref_wall / fast_wall

    table = Table(["engine", "wall (s)", "makespan (s)"],
                  title=f"SimEngine fast path vs reference, {len(ops)}-op DAG")
    table.add_row(["SimEngine (fast)", fast_wall, fast_makespan])
    table.add_row(["ReferenceSimEngine", ref_wall, ref_makespan])
    print(table)
    print(f"speedup: {speedup:.2f}x")

    ok = True
    if abs(fast_makespan - ref_makespan) > 1e-9 * max(1.0, abs(ref_makespan)):
        print("FAIL: engines disagree on the makespan", file=sys.stderr)
        ok = False
    if ok and not args.quick and speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{REQUIRED_SPEEDUP:.1f}x", file=sys.stderr)
        ok = False
    payload = {
        "num_ops": len(ops),
        "devices": args.devices,
        "fast_wall_s": fast_wall,
        "reference_wall_s": ref_wall,
        "speedup": speedup,
        "required_speedup": None if args.quick else REQUIRED_SPEEDUP,
    }
    return payload, ok


def _evaluate_grid(batches, ns, enabled: bool):
    """One timed pass of MPipeMoE.evaluate over the (batch, n) grid.

    ``enabled=False`` turns the shared evaluator off, which reproduces
    the seed evaluation path (uncached stage costs, a fresh Op DAG and a
    fully recorded run per simulated trial).
    """
    spec = get_preset("GPT-XL")
    ctx = SystemContext(world_size=64)
    ctx.evaluator.enabled = enabled
    models = [MPipeMoEModel(ctx, fixed_n=n) for n in ns]
    t0 = time.perf_counter()
    reports = [m.evaluate(spec, b) for b in batches for m in models]
    return time.perf_counter() - t0, reports


def selector_loop_benchmark(args) -> tuple[dict, bool]:
    """Seed path vs shared-evaluator fast path on MPipeMoE.evaluate."""
    batches = QUICK_EVAL_BATCHES if args.quick else EVAL_BATCHES
    ns = QUICK_EVAL_NS if args.quick else EVAL_NS
    rounds = 1 if args.quick else 3

    # Fresh contexts every round; best-of-N tames scheduler noise (the
    # reports are identical across rounds, so any round's serve to check
    # seed/fast agreement).
    seed_runs = [_evaluate_grid(batches, ns, enabled=False) for _ in range(rounds)]
    fast_runs = [_evaluate_grid(batches, ns, enabled=True) for _ in range(rounds)]
    seed_wall = min(wall for wall, _ in seed_runs)
    fast_wall = min(wall for wall, _ in fast_runs)
    seed_reports = seed_runs[0][1]
    fast_reports = fast_runs[0][1]
    points = len(batches) * len(ns)
    speedup = seed_wall / fast_wall

    table = Table(
        ["path", "wall (ms)", "points"],
        title=f"MPipeMoE.evaluate selector loop, GPT-XL x {points} (B, n) points",
    )
    table.add_row(["seed (no cache, recorded sims)", seed_wall * 1e3, points])
    table.add_row(["shared evaluator + compiled", fast_wall * 1e3, points])
    print(table)
    print(f"evaluate speedup: {speedup:.2f}x")

    ok = True
    if seed_reports != fast_reports:
        print("FAIL: cached evaluation changed a SystemReport", file=sys.stderr)
        ok = False
    if ok and not args.quick and speedup < REQUIRED_EVALUATE_SPEEDUP:
        print(f"FAIL: evaluate speedup {speedup:.2f}x < required "
              f"{REQUIRED_EVALUATE_SPEEDUP:.1f}x", file=sys.stderr)
        ok = False
    payload = {
        "spec": "GPT-XL",
        "world_size": 64,
        "batches": list(batches),
        "ns": [n if n is not None else "adaptive" for n in ns],
        "points": points,
        "rounds": rounds,
        "seed_wall_s": seed_wall,
        "fast_wall_s": fast_wall,
        "speedup": speedup,
        "required_speedup": None if args.quick else REQUIRED_EVALUATE_SPEEDUP,
        "reports_identical": seed_reports == fast_reports,
    }
    return payload, ok


def emit_json(mode: str, engine_payload: dict, evaluate_payload: dict) -> None:
    """Append this run's record to the trajectory file (a JSON array)."""
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    record = {
        "benchmark": "bench_sim_engine",
        "mode": mode,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "engine": engine_payload,
        "evaluate": evaluate_payload,
    }
    history: list = []
    if RESULTS_JSON.is_file():
        try:
            previous = json.loads(RESULTS_JSON.read_text())
            if isinstance(previous, list):
                history = previous
            elif isinstance(previous, dict):  # pre-trajectory single record
                history = [previous]
        except (OSError, json.JSONDecodeError):
            pass  # unreadable trajectory: restart it rather than crash
    history.append(record)
    RESULTS_JSON.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    print(f"appended run {len(history)} to {RESULTS_JSON}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=10_000,
                        help="approximate DAG size (default 10000)")
    parser.add_argument("--devices", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, agreement checks only (CI smoke)")
    args = parser.parse_args(argv)

    engine_payload, engine_ok = engine_benchmark(args)
    evaluate_payload, evaluate_ok = selector_loop_benchmark(args)
    emit_json("quick" if args.quick else "full", engine_payload, evaluate_payload)

    if not (engine_ok and evaluate_ok):
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
