"""SimEngine fast-path speedup benchmark.

Builds a large synthetic multi-device MoE-style DAG (per-device S/C/R
micro-op chains on comm/comp/mem lanes with periodic cross-device
barriers — the shape ``build_timeline`` produces, scaled to cluster
size), runs it through both the production :class:`SimEngine` and the
retained :class:`ReferenceSimEngine`, and reports wall-clock speedup.

The two engines must agree on the makespan to 1e-9; in full mode the
fast path must be at least 5x faster on the 10k-op DAG (the PR's
acceptance bar).  ``--quick`` shrinks the DAG for CI smoke runs and
only checks agreement.

Run:  PYTHONPATH=src python benchmarks/bench_sim_engine.py [--quick]
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.hardware.interference import StreamKind
from repro.sim.engine import Op, ReferenceSimEngine, SimEngine
from repro.utils import Table

REQUIRED_SPEEDUP = 5.0


def build_dag(num_ops: int, devices: int, seed: int = 0) -> list[Op]:
    """Deterministic layered DAG of ~``num_ops`` ops across ``devices``."""
    rng = random.Random(seed)
    ops: list[Op] = []
    barrier = None
    stage = 0
    while len(ops) < num_ops:
        stage_r: list[Op] = []
        for dev in range(devices):
            s_deps = (barrier,) if barrier is not None else ()
            s = Op(f"S{stage}d{dev}", dev, StreamKind.COMM,
                   rng.uniform(0.5, 1.5), s_deps, tag="S")
            c = Op(f"C{stage}d{dev}", dev, StreamKind.COMP,
                   rng.uniform(1.0, 3.0), (s,), tag="C")
            r = Op(f"R{stage}d{dev}", dev, StreamKind.COMM,
                   rng.uniform(0.5, 1.5), (c,), tag="R")
            ops += [s, c, r]
            stage_r.append(r)
            if rng.random() < 0.3:
                ops.append(
                    Op(f"D{stage}d{dev}", dev, StreamKind.MEM,
                       rng.uniform(0.2, 1.0), (c,), tag="D")
                )
        # Cross-device sync every few stages, like an optimizer step or
        # the loss boundary between forward and backward.
        if stage % 4 == 3:
            barrier = Op(f"B{stage}", 0, StreamKind.COMP, 0.0,
                         tuple(stage_r), tag="X")
            ops.append(barrier)
        stage += 1
    return ops


def time_engine(engine, ops: list[Op]) -> tuple[float, float]:
    """(wall seconds, simulated makespan) of one run."""
    t0 = time.perf_counter()
    result = engine.run(ops)
    return time.perf_counter() - t0, result.makespan


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=10_000,
                        help="approximate DAG size (default 10000)")
    parser.add_argument("--devices", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small DAG, agreement check only (CI smoke)")
    args = parser.parse_args(argv)

    num_ops = 2_000 if args.quick else args.ops
    ops = build_dag(num_ops, args.devices, args.seed)
    print(f"DAG: {len(ops)} ops on {args.devices} devices "
          f"({'quick' if args.quick else 'full'} mode)")

    fast_wall, fast_makespan = time_engine(SimEngine(), ops)
    ref_wall, ref_makespan = time_engine(ReferenceSimEngine(), ops)
    speedup = ref_wall / fast_wall

    table = Table(["engine", "wall (s)", "makespan (s)"],
                  title=f"SimEngine fast path vs reference, {len(ops)}-op DAG")
    table.add_row(["SimEngine (fast)", fast_wall, fast_makespan])
    table.add_row(["ReferenceSimEngine", ref_wall, ref_makespan])
    print(table)
    print(f"speedup: {speedup:.2f}x")

    if abs(fast_makespan - ref_makespan) > 1e-9 * max(1.0, abs(ref_makespan)):
        print("FAIL: engines disagree on the makespan", file=sys.stderr)
        return 1
    if not args.quick and speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{REQUIRED_SPEEDUP:.1f}x", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
