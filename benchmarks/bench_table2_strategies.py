"""Table II — characteristics of the memory reusing strategies.

Regenerates the strategy table (restore methods, mu/eta rows, workload
vectors Q_fw/Q_bw) from the implementation, and cross-checks the Q
vectors against the behaviour of the functional executor: the number of
PCIe copies actually performed per micro-batch must equal the tabulated
q values.  The executor cross-check sweeps the strategy axis through the
sweep runner with a custom (module-level) evaluator.
"""

import numpy as np

from repro.core.experts import ExpertFFN
from repro.hardware.interference import PAPER_INTERFERENCE
from repro.memory.host_pool import HostBufferPool
from repro.memory.strategies import STRATEGIES, strategy_names
from repro.pipeline.executor import PipelinedMoEMiddle
from repro.api import Scenario, ScenarioGrid, Study
from repro.utils import Table

from conftest import emit, run_once

W, EPER, C, M = 2, 1, 4, 6
H = 4 * M


def count_offloads(scenario: Scenario) -> dict:
    """Sweep evaluator: actual PCIe offloads per stage of one fw+bw run."""
    strategy = scenario.strategy or "none"
    experts = [[ExpertFFN(M, H, activation="relu", seed=r)] for r in range(W)]
    rng = np.random.default_rng(0)
    ti = rng.standard_normal((W, W, EPER, C, M))
    host = HostBufferPool()
    n = 2
    eng = PipelinedMoEMiddle(experts, n, strategy, host_pool=host)
    eng.forward(ti)
    offloads_per_stage = host.num_offloads / (n * W) if strategy != "none" else 0
    eng.backward(rng.standard_normal(ti.shape))
    return {"offloads_per_stage": offloads_per_stage}


STRATEGY_GRID = ScenarioGrid(
    systems=("timeline",), strategies=strategy_names(), ns=(2,)
)


def compute():
    rows = []
    for name in strategy_names():
        s = STRATEGIES[name]
        mu = PAPER_INTERFERENCE.mu(s.uses_mem_stream)
        eta = PAPER_INTERFERENCE.eta(s.uses_mem_stream) if s.uses_mem_stream else None
        rows.append(
            (
                name,
                s.tdi.value,
                s.tm.value,
                f"{mu:.2f}" + ("(all)" if s.uses_mem_stream else "(comp)"),
                f"{eta:.2f}" if eta else "-",
                list(s.q_fw),
                list(s.q_bw),
            )
        )
    return rows, Study(STRATEGY_GRID).objective(count_offloads).run()


def test_table2_strategies(benchmark):
    rows, sweep = run_once(benchmark, compute)
    table = Table(
        ["strategy", "TDI", "TM", "mu", "eta", "Q_fw", "Q_bw"],
        title="Table II — memory reusing strategies",
    )
    for row in rows:
        table.add_row(row)
    emit("table2_strategies", table)

    # Cross-check Q_mem against the executor's actual offload traffic:
    # per (rank, partition) stage, S1 offloads TDI+TM (2 host writes),
    # S2 offloads TM only, S3 offloads TDI only, S4 none.
    expected_offload_objects = {"none": 0, "S1": 2, "S2": 1, "S3": 1, "S4": 0}
    for result in sweep:
        name = result.scenario.strategy
        got = result["offloads_per_stage"]
        assert got == expected_offload_objects[name], (name, got)

    # And the tabulated q_mem reflects those objects weighted by H/M = 4.
    weights = {"S1": 1 + 4, "S2": 4, "S3": 1, "S4": 0, "none": 0}
    for name, q_mem in weights.items():
        assert STRATEGIES[name].q_fw[2] == q_mem
