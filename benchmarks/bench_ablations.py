"""Ablations of MPipeMoE's individual design choices.

Not a paper figure — this bench isolates each mechanism the paper
motivates and shows its standalone contribution on GPT-XL at 64 GPUs:

* split-by-B (fused fine-grained All-to-All) vs split-by-N
  (point-to-point decomposition) at the *same* granularity — Fig. 5's
  argument isolated from FasterMoE's other differences;
* adaptive granularity vs the best and worst fixed n over a dynamic
  batch-size stream — what Algorithm 1 buys end-to-end;
* pipeline overlap vs sequential execution with identical stage costs —
  the raw value of overlapping (Fig. 4);

Every operating point is a scenario of the sweep subsystem's timeline
backend; the ad-hoc loops collapse into three grid declarations and the
adaptive study replays Algorithm 1 over the sweep's (batch, n) lookup.
"""

from repro.pipeline.granularity import GranularitySearcher
from repro.api import ScenarioGrid, Study
from repro.utils import Table

from conftest import emit, run_once

WORLD = 64
BATCHES = (4096, 16384)
#: Dynamic batch-size stream for the adaptive-granularity study.
STREAM = (4096, 16384, 24576, 8192, 32768, 6144)
CANDIDATES = (1, 2, 4, 8)

DECOMPOSITION_GRID = ScenarioGrid(
    systems=("timeline",), world_sizes=(WORLD,), batches=BATCHES,
    ns=(4,), decomposed=(False, True),
)
OVERLAP_GRID = ScenarioGrid(
    systems=("timeline",), world_sizes=(WORLD,), batches=BATCHES,
    ns=(4,), sequential=(False, True),
)
GRANULARITY_GRID = ScenarioGrid(
    systems=("timeline",), world_sizes=(WORLD,), batches=sorted(STREAM),
    ns=CANDIDATES,
)


def compute():
    study = Study(
        DECOMPOSITION_GRID + OVERLAP_GRID + GRANULARITY_GRID,
        objective="timeline",
    )
    sweep = study.run()
    t = {
        (
            r.scenario.batch, r.scenario.n,
            r.scenario.decomposed_comm, r.scenario.sequential,
        ): r["makespan"]
        for r in sweep
    }
    rows = []

    # 1. split-by-B vs split-by-N at identical granularity.
    for batch in BATCHES:
        fused = t[(batch, 4, False, False)]
        p2p = t[(batch, 4, True, False)]
        rows.append(("split-by-B vs split-by-N", f"B={batch}", p2p / fused))

    # 2. overlap vs sequential at identical stage costs.
    for batch in BATCHES:
        seq = t[(batch, 4, False, True)]
        pipe = t[(batch, 4, False, False)]
        rows.append(("overlap vs sequential", f"B={batch}", seq / pipe))

    # 3. adaptive vs fixed n over a dynamic batch stream.
    def iteration(batch, n):
        return t[(batch, n, False, False)]

    searcher = GranularitySearcher(evaluate=iteration, candidates=CANDIDATES)
    adaptive_total = sum(iteration(b, searcher.configure(b)) for b in STREAM)
    fixed_totals = {
        n: sum(iteration(b, n) for b in STREAM) for n in CANDIDATES
    }
    best_fixed = min(fixed_totals.values())
    worst_fixed = max(fixed_totals.values())
    rows.append(("adaptive vs best fixed n", "dynamic B stream",
                 best_fixed / adaptive_total))
    rows.append(("adaptive vs worst fixed n", "dynamic B stream",
                 worst_fixed / adaptive_total))
    return rows


def test_ablations(benchmark):
    rows = run_once(benchmark, compute)
    table = Table(["ablation", "point", "gain (x)"],
                  title="Design-choice ablations, GPT-XL, 64 GPUs")
    for row in rows:
        table.add_row(row)
    emit("ablations", table)

    gains = {(r[0], r[1]): r[2] for r in rows}
    # Fused fine-grained All-to-All always beats the P2P decomposition.
    assert all(v > 1.0 for (k, _), v in gains.items() if k.startswith("split"))
    # Overlap always beats sequential execution.
    assert all(v > 1.0 for (k, _), v in gains.items() if k.startswith("overlap"))
    # Adaptive matches the best static choice and beats the worst clearly.
    assert gains[("adaptive vs best fixed n", "dynamic B stream")] >= 0.999
    assert gains[("adaptive vs worst fixed n", "dynamic B stream")] > 1.1
