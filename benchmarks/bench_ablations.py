"""Ablations of MPipeMoE's individual design choices.

Not a paper figure — this bench isolates each mechanism the paper
motivates and shows its standalone contribution on GPT-XL at 64 GPUs:

* split-by-B (fused fine-grained All-to-All) vs split-by-N
  (point-to-point decomposition) at the *same* granularity — Fig. 5's
  argument isolated from FasterMoE's other differences;
* adaptive granularity vs the best and worst fixed n over a dynamic
  batch-size stream — what Algorithm 1 buys end-to-end;
* pipeline overlap vs sequential execution with identical stage costs —
  the raw value of overlapping (Fig. 4);
* ring-slot counts: the 2/2/1 slot layout of Fig. 6 vs a naive
  1-slot-per-role variant, which would serialize comm and compute
  (memory saving vs achievable overlap trade-off).
"""

from repro.comm.cost import NcclCostModel
from repro.config import DGX_A100_CLUSTER, MOE_GPT3_XL
from repro.hardware.device import A100_SXM_40GB
from repro.hardware.topology import ClusterTopology
from repro.pipeline.granularity import GranularitySearcher
from repro.pipeline.schedule import MoEStageCosts, build_timeline, timeline_makespan
from repro.utils import Table

from conftest import emit, run_once

WORLD = 64


def setup():
    topo = ClusterTopology(DGX_A100_CLUSTER)
    return NcclCostModel(topo, WORLD)


def iteration(comm, batch, n, decomposed=False, sequential=False, strategy="none"):
    costs = MoEStageCosts.compute(MOE_GPT3_XL, batch, n, A100_SXM_40GB, comm)
    ops = build_timeline(
        costs, n, strategy=strategy,
        decomposed_comm=decomposed, sequential=sequential,
    )
    return timeline_makespan(ops).makespan


def compute():
    comm = setup()
    rows = []

    # 1. split-by-B vs split-by-N at identical granularity.
    for batch in (4096, 16384):
        fused = iteration(comm, batch, 4)
        p2p = iteration(comm, batch, 4, decomposed=True)
        rows.append(("split-by-B vs split-by-N", f"B={batch}", p2p / fused))

    # 2. overlap vs sequential at identical stage costs.
    for batch in (4096, 16384):
        seq = iteration(comm, batch, 4, sequential=True)
        pipe = iteration(comm, batch, 4)
        rows.append(("overlap vs sequential", f"B={batch}", seq / pipe))

    # 3. adaptive vs fixed n over a dynamic batch stream.
    stream = [4096, 16384, 24576, 8192, 32768, 6144]
    searcher = GranularitySearcher(
        evaluate=lambda b, n: iteration(comm, b, n), candidates=(1, 2, 4, 8)
    )
    adaptive_total = sum(iteration(comm, b, searcher.configure(b)) for b in stream)
    fixed_totals = {
        n: sum(iteration(comm, b, n) for b in stream) for n in (1, 2, 4, 8)
    }
    best_fixed = min(fixed_totals.values())
    worst_fixed = max(fixed_totals.values())
    rows.append(("adaptive vs best fixed n", "dynamic B stream",
                 best_fixed / adaptive_total))
    rows.append(("adaptive vs worst fixed n", "dynamic B stream",
                 worst_fixed / adaptive_total))
    return rows


def test_ablations(benchmark):
    rows = run_once(benchmark, compute)
    table = Table(["ablation", "point", "gain (x)"],
                  title="Design-choice ablations, GPT-XL, 64 GPUs")
    for row in rows:
        table.add_row(row)
    emit("ablations", table)

    gains = {(r[0], r[1]): r[2] for r in rows}
    # Fused fine-grained All-to-All always beats the P2P decomposition.
    assert all(v > 1.0 for (k, _), v in gains.items() if k.startswith("split"))
    # Overlap always beats sequential execution.
    assert all(v > 1.0 for (k, _), v in gains.items() if k.startswith("overlap"))
    # Adaptive matches the best static choice and beats the worst clearly.
    assert gains[("adaptive vs best fixed n", "dynamic B stream")] >= 0.999
    assert gains[("adaptive vs worst fixed n", "dynamic B stream")] > 1.1
