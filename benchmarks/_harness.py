"""Shared plumbing for the ``bench_*.py`` scripts.

Every benchmark in this directory does the same three things around its
actual measurements: wall-clock a callable with ``perf_counter``, stamp
the run with a UTC timestamp, and append a record to its trajectory
file (``benchmarks/results/BENCH_*.json``, a JSON array that grows one
entry per run).  This module is that boilerplate, extracted once —
the JSON bytes it writes are identical to what the scripts produced
inline, so existing trajectory files keep appending seamlessly.

Stdlib-only, like the scripts themselves.
"""

from __future__ import annotations

import json
import pathlib
import time


def utc_timestamp() -> str:
    """The trajectory-record timestamp: ``2023-01-31T12:34:56Z``."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def timed(fn, *args, **kwargs) -> tuple:
    """Run ``fn(*args, **kwargs)`` and return ``(result, wall_seconds)``.

    Wall time is a ``time.perf_counter`` delta around the call and
    nothing else — no warmup, no repetition; benchmarks own those.
    """
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def append_record(path: pathlib.Path, record: dict) -> None:
    """Append ``record`` to the JSON-array trajectory file at ``path``.

    Creates the parent directory on first use.  An unreadable or
    non-array file restarts the trajectory rather than crashing — a
    benchmark run should never die on its own bookkeeping.  Writes
    ``json.dumps(history, indent=1, sort_keys=True)`` plus a trailing
    newline (the exact historical format) and prints the one-line
    confirmation the scripts always printed.
    """
    path.parent.mkdir(exist_ok=True)
    history: list = []
    if path.is_file():
        try:
            previous = json.loads(path.read_text())
            if isinstance(previous, list):
                history = previous
        except (OSError, json.JSONDecodeError):
            pass  # unreadable trajectory: restart it rather than crash
    history.append(record)
    path.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    print(f"appended run {len(history)} to {path}")
