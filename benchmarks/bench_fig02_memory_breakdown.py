"""Fig. 2 — memory footprint breakdown and GPU utilization.

Paper: proportion of model states / activations / temporary buffers for
the GPT-S, GPT-XL and BERT-L MoE layers with token batch sizes 256..16k
(x2 steps), plus the compute utilization curve showing small batches
under-utilize the GPU.
"""

import pytest

from repro.comm.cost import NcclCostModel
from repro.config import DGX_A100_CLUSTER, get_preset
from repro.hardware.device import A100_SXM_40GB
from repro.hardware.topology import ClusterTopology
from repro.memory.footprint import FootprintModel
from repro.pipeline.schedule import MoEStageCosts, build_timeline, timeline_makespan
from repro.utils import Table

from conftest import emit, run_once

MODELS = ("GPT-S", "GPT-XL", "BERT-L")
BATCHES = (256, 512, 1024, 2048, 4096, 8192, 16384)
WORLD = 64


def compute_breakdown():
    topo = ClusterTopology(DGX_A100_CLUSTER)
    comm = NcclCostModel(topo, WORLD)
    rows = []
    for model in MODELS:
        spec = get_preset(model)
        fp = FootprintModel(spec, WORLD)
        for batch in BATCHES:
            parts = fp.breakdown(batch)
            total = sum(parts.values())
            costs = MoEStageCosts.compute(spec, batch, 1, A100_SXM_40GB, comm)
            res = timeline_makespan(
                build_timeline(costs, 1, strategy="none", sequential=True)
            )
            flops = 3 * 4.0 * batch * spec.d_model * spec.d_hidden  # fw + bw
            util = flops / (res.makespan * A100_SXM_40GB.peak_gemm_flops)
            rows.append(
                (
                    model,
                    batch,
                    parts["model_states"] / total,
                    parts["activations"] / total,
                    parts["temporary_buffers"] / total,
                    util,
                )
            )
    return rows


def test_fig02_memory_breakdown(benchmark):
    rows = run_once(benchmark, compute_breakdown)
    table = Table(
        ["model", "B", "model_states", "activations", "temp_buffers", "gpu_util"],
        title="Fig. 2 — memory footprint ratio breakdown + GPU utilization",
    )
    for row in rows:
        table.add_row(row)
    emit("fig02_memory_breakdown", table)

    by_model = {}
    for model, batch, ms, act, buf, util in rows:
        by_model.setdefault(model, []).append((batch, ms, act + buf, util))
    for model, series in by_model.items():
        # Paper claim: activations+buffers become the major share as B grows.
        act_shares = [a for _, _, a, _ in series]
        assert act_shares == sorted(act_shares), model
        assert act_shares[-1] > 0.5, model
        # Paper claim: utilization rises with batch size.
        utils = [u for _, _, _, u in series]
        assert utils == sorted(utils), model
