"""Fig. 12 — effect of pipeline granularity across batch sizes.

Paper: GPT-XL, speedup of PipeMoE with fixed n in {1,2,4,8} (normalized
to n=1) as B sweeps 4k..31k, plus the adaptive configuration (dashed
line) tracking the upper envelope.  Published bands: n=2 best below 8k,
n=4 best for 8k-22k, n=8 best beyond 22k.
"""

from repro.config import MOE_GPT3_XL
from repro.systems import PipeMoEModel
from repro.utils import Table

from conftest import emit, run_once

BATCHES = [1024 * k for k in (4, 6, 8, 12, 16, 20, 22, 24, 28, 31)]
FIXED_NS = (1, 2, 4, 8)


def compute(ctx):
    fixed = {n: PipeMoEModel(ctx, fixed_n=n) for n in FIXED_NS}
    adaptive = PipeMoEModel(ctx)
    rows = []
    for batch in BATCHES:
        base = fixed[1].evaluate(MOE_GPT3_XL, batch).iteration_time
        speedups = {
            n: base / fixed[n].evaluate(MOE_GPT3_XL, batch).iteration_time
            for n in FIXED_NS
        }
        rep = adaptive.evaluate(MOE_GPT3_XL, batch)
        rows.append((batch, speedups, base / rep.iteration_time, rep.num_partitions))
    return rows


def test_fig12_granularity(benchmark, paper_world):
    rows = run_once(benchmark, lambda: compute(paper_world))
    table = Table(
        ["B", "n=1", "n=2", "n=4", "n=8", "adaptive", "chosen n"],
        title="Fig. 12 — speedup vs PipeMoE(n=1) across granularities, GPT-XL",
    )
    for batch, speedups, adaptive_speedup, chosen in rows:
        table.add_row(
            [batch // 1024 * 1024, *(speedups[n] for n in FIXED_NS),
             adaptive_speedup, chosen]
        )
    emit("fig12_granularity", table)

    # Adaptive tracks the best fixed configuration everywhere.
    for batch, speedups, adaptive_speedup, _ in rows:
        assert adaptive_speedup >= max(speedups.values()) * 0.999, batch
    # The chosen n is monotone non-decreasing in B (Algorithm 1's
    # hypothesis, which Fig. 12 validates).
    chosen = [c for *_, c in rows]
    assert chosen == sorted(chosen)
    # The paper's bands: small batches prefer coarse n, large prefer fine.
    assert chosen[0] <= 2
    assert chosen[-1] >= 8
