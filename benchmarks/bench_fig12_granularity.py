"""Fig. 12 — effect of pipeline granularity across batch sizes.

Paper: GPT-XL, speedup of PipeMoE with fixed n in {1,2,4,8} (normalized
to n=1) as B sweeps 4k..31k, plus the adaptive configuration (dashed
line) tracking the upper envelope.  Published bands: n=2 best below 8k,
n=4 best for 8k-22k, n=8 best beyond 22k.

The (B x n) sweep is one :class:`~repro.api.ScenarioGrid` over the
pipemoe backend with the adaptive point as ``n=None``, run through the
:class:`~repro.api.Study` facade.
"""

from repro.api import ScenarioGrid, Study
from repro.utils import Table

from conftest import emit, run_once

BATCHES = [1024 * k for k in (4, 6, 8, 12, 16, 20, 22, 24, 28, 31)]
FIXED_NS = (1, 2, 4, 8)

GRID = ScenarioGrid(
    systems=("pipemoe",), batches=BATCHES, ns=FIXED_NS + (None,)
)


def compute():
    results = Study(GRID).run()
    by = {(r.scenario.batch, r.scenario.n): r for r in results}
    rows = []
    for batch in BATCHES:
        base = by[(batch, 1)]["iteration_time"]
        speedups = {n: base / by[(batch, n)]["iteration_time"] for n in FIXED_NS}
        rep = by[(batch, None)]
        rows.append((batch, speedups, base / rep["iteration_time"], rep["n"]))
    return rows


def test_fig12_granularity(benchmark):
    rows = run_once(benchmark, compute)
    table = Table(
        ["B", "n=1", "n=2", "n=4", "n=8", "adaptive", "chosen n"],
        title="Fig. 12 — speedup vs PipeMoE(n=1) across granularities, GPT-XL",
    )
    for batch, speedups, adaptive_speedup, chosen in rows:
        table.add_row(
            [batch // 1024 * 1024, *(speedups[n] for n in FIXED_NS),
             adaptive_speedup, chosen]
        )
    emit("fig12_granularity", table)

    # Adaptive tracks the best fixed configuration everywhere.
    for batch, speedups, adaptive_speedup, _ in rows:
        assert adaptive_speedup >= max(speedups.values()) * 0.999, batch
    # The chosen n is monotone non-decreasing in B (Algorithm 1's
    # hypothesis, which Fig. 12 validates).
    chosen = [c for *_, c in rows]
    assert chosen == sorted(chosen)
    # The paper's bands: small batches prefer coarse n, large prefer fine.
    assert chosen[0] <= 2
    assert chosen[-1] >= 8
