"""Fig. 11 — overall performance breakdown in memory-time coordinates.

Paper: GPT-XL on 64 GPUs; points for FastMoE, FasterMoE, PipeMoE(n=4),
PipeMoE and MPipeMoE in (memory footprint, training time) space.  The
closer to the origin the better: MPipeMoE dominates both baselines, and
the MPipeMoE point trades a little time (reuse overhead) for the lowest
memory.
"""

from repro.config import MOE_GPT3_XL
from repro.systems import (
    FastMoEModel,
    FasterMoEModel,
    MPipeMoEModel,
    PipeMoEModel,
)
from repro.utils import Table

from conftest import emit, run_once

BATCH = 16384


def compute(ctx):
    systems = [
        FastMoEModel(ctx),
        FasterMoEModel(ctx),
        PipeMoEModel(ctx, fixed_n=4),
        PipeMoEModel(ctx),
        MPipeMoEModel(ctx),
    ]
    return [s.evaluate(MOE_GPT3_XL, BATCH) for s in systems]


def test_fig11_pareto(benchmark, paper_world):
    reports = run_once(benchmark, lambda: compute(paper_world))
    table = Table(
        ["system", "memory (MB)", "time (ms)", "n", "strategy"],
        title=f"Fig. 11 — memory-time coordinates, GPT-XL (B={BATCH})",
    )
    for rep in reports:
        table.add_row(
            [
                rep.system,
                rep.peak_memory_bytes / 1e6,
                rep.iteration_time * 1e3,
                rep.num_partitions,
                rep.strategy,
            ]
        )
    emit("fig11_pareto", table)

    by_name = {r.system: r for r in reports}
    fast, faster = by_name["FastMoE"], by_name["FasterMoE"]
    pipe4, pipe = by_name["PipeMoE(n=4)"], by_name["PipeMoE"]
    mpipe = by_name["MPipeMoE"]

    # MPipeMoE strictly dominates both baselines (closer to the origin).
    for baseline in (fast, faster):
        assert mpipe.iteration_time < baseline.iteration_time
        assert mpipe.peak_memory_bytes < baseline.peak_memory_bytes
    # Adaptive PipeMoE is at least as fast as the pinned n=4 variant.
    assert pipe.iteration_time <= pipe4.iteration_time * 1.0001
    # MPipeMoE achieves the lowest memory of all systems.
    assert mpipe.peak_memory_bytes == min(r.peak_memory_bytes for r in reports)
    # ... paying only a bounded time overhead over pure PipeMoE.
    assert mpipe.iteration_time <= pipe.iteration_time * 1.35
