"""Fig. 11 — overall performance breakdown in memory-time coordinates.

Paper: GPT-XL on 64 GPUs; points for FastMoE, FasterMoE, PipeMoE(n=4),
PipeMoE and MPipeMoE in (memory footprint, training time) space.  The
closer to the origin the better: MPipeMoE dominates both baselines, and
the MPipeMoE point trades a little time (reuse overhead) for the lowest
memory.

Declared as a :class:`~repro.api.Study`: the five systems are five
scenarios of one :class:`~repro.api.ScenarioGrid`, and the frontier
claim is the ResultSet's own :meth:`~repro.api.ResultSet.pareto`.
"""

from repro.api import ScenarioGrid, Study

from conftest import emit, run_once

BATCH = 16384

GRID = (
    ScenarioGrid(systems=("fastmoe", "fastermoe"), batches=(BATCH,))
    + ScenarioGrid(systems=("pipemoe",), ns=(4, None), batches=(BATCH,))
    + ScenarioGrid(systems=("mpipemoe",), batches=(BATCH,))
)


def test_fig11_pareto(benchmark):
    results = run_once(benchmark, lambda: Study(GRID).run())
    table = results.table(
        [
            "system",
            ("memory (MB)", lambda r: r["peak_memory_bytes"] / 1e6),
            ("time (ms)", lambda r: r["iteration_time"] * 1e3),
            "n",
            "strategy",
        ],
        title=f"Fig. 11 — memory-time coordinates, GPT-XL (B={BATCH})",
    )
    emit("fig11_pareto", table)

    by_name = {r["system"]: r for r in results}
    fast, faster = by_name["FastMoE"], by_name["FasterMoE"]
    pipe4, pipe = by_name["PipeMoE(n=4)"], by_name["PipeMoE"]
    mpipe = by_name["MPipeMoE"]

    # MPipeMoE strictly dominates both baselines (closer to the origin).
    for baseline in (fast, faster):
        assert mpipe["iteration_time"] < baseline["iteration_time"]
        assert mpipe["peak_memory_bytes"] < baseline["peak_memory_bytes"]
    # Adaptive PipeMoE is at least as fast as the pinned n=4 variant.
    assert pipe["iteration_time"] <= pipe4["iteration_time"] * 1.0001
    # MPipeMoE achieves the lowest memory of all systems.
    assert mpipe["peak_memory_bytes"] == min(
        r["peak_memory_bytes"] for r in results
    )
    # ... paying only a bounded time overhead over pure PipeMoE.
    assert mpipe["iteration_time"] <= pipe["iteration_time"] * 1.35

    # The Fig. 11 frontier: both baselines are dominated, MPipeMoE is on it.
    front = {r["system"] for r in results.pareto()}
    assert "MPipeMoE" in front
    assert not {"FastMoE", "FasterMoE"} & front
