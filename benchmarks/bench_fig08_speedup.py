"""Fig. 8 — training speedup of PipeMoE over FastMoE and FasterMoE.

Paper: bars for FastMoE (=1), FasterMoE, PipeMoE(n=1) and PipeMoE across
{GPT-S, BERT-L, GPT-XL} x B in {4k, 8k, 16k} on 64 GPUs.  Headline
shape: PipeMoE wins everywhere except the non-compute-bound GPT-S(4k)
point, where PipeMoE(n=1) is competitive because pipelining cannot help
a workload that is not compute-bound.

Declared as a :class:`~repro.api.Study`: the 4 systems x 9 configs are
one concatenated :class:`~repro.api.ScenarioGrid`, evaluated through
the public facade (which shares the memoized evaluator across all 36
points).
"""

from repro.api import ScenarioGrid, Study
from repro.utils import Table

from conftest import emit, run_once

MODELS = ("GPT-S", "BERT-L", "GPT-XL")
BATCHES = (4096, 8192, 16384)

GRID = (
    ScenarioGrid(systems=("fastmoe", "fastermoe"), specs=MODELS, batches=BATCHES)
    + ScenarioGrid(systems=("pipemoe",), specs=MODELS, batches=BATCHES, ns=(1, None))
)


def compute_speedups():
    results = Study(GRID).run()
    by = {
        (r.scenario.system, r.scenario.n, r.scenario.spec, r.scenario.batch): r
        for r in results
    }
    rows = []
    for model in MODELS:
        for batch in BATCHES:
            base = by[("fastmoe", None, model, batch)]["iteration_time"]
            pipe = by[("pipemoe", None, model, batch)]
            rows.append(
                (
                    f"{model}({batch // 1024}k)",
                    1.0,
                    base / by[("fastermoe", None, model, batch)]["iteration_time"],
                    base / by[("pipemoe", 1, model, batch)]["iteration_time"],
                    base / pipe["iteration_time"],
                    pipe["n"],
                )
            )
    return rows


def test_fig08_speedup(benchmark):
    rows = run_once(benchmark, compute_speedups)
    table = Table(
        ["config", "FastMoE", "FasterMoE", "PipeMoE(n=1)", "PipeMoE", "chosen n"],
        title="Fig. 8 — speedup over FastMoE (64 GPUs)",
    )
    for row in rows:
        table.add_row(row)
    emit("fig08_speedup", table)

    speedups = {cfg: pipe for cfg, _, _, _, pipe, _ in rows}
    # PipeMoE beats FastMoE on every configuration.
    assert all(s > 1.0 for s in speedups.values())
    # PipeMoE beats FasterMoE on every configuration (paper: avg 2.26x).
    for cfg, _, faster_s, _, pipe_s, _ in rows:
        assert pipe_s > faster_s, cfg
    # Pipelining helps most when compute-bound: larger batches of the
    # same model never reduce the PipeMoE/PipeMoE(n=1) advantage much.
    for model in MODELS:
        small = next(r for r in rows if r[0] == f"{model}(4k)")
        large = next(r for r in rows if r[0] == f"{model}(16k)")
        gain_small = small[4] / small[3]
        gain_large = large[4] / large[3]
        assert gain_large >= 0.9 * gain_small, model
