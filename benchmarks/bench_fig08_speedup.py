"""Fig. 8 — training speedup of PipeMoE over FastMoE and FasterMoE.

Paper: bars for FastMoE (=1), FasterMoE, PipeMoE(n=1) and PipeMoE across
{GPT-S, BERT-L, GPT-XL} x B in {4k, 8k, 16k} on 64 GPUs.  Headline
shape: PipeMoE wins everywhere except the non-compute-bound GPT-S(4k)
point, where PipeMoE(n=1) is competitive because pipelining cannot help
a workload that is not compute-bound.
"""

from repro.config import get_preset
from repro.systems import FastMoEModel, FasterMoEModel, PipeMoEModel
from repro.utils import Table

from conftest import emit, run_once

MODELS = ("GPT-S", "BERT-L", "GPT-XL")
BATCHES = (4096, 8192, 16384)


def compute_speedups(ctx):
    fast = FastMoEModel(ctx)
    faster = FasterMoEModel(ctx)
    pipe1 = PipeMoEModel(ctx, fixed_n=1)
    pipe = PipeMoEModel(ctx)
    rows = []
    for model in MODELS:
        spec = get_preset(model)
        for batch in BATCHES:
            base = fast.evaluate(spec, batch)
            rows.append(
                (
                    f"{model}({batch // 1024}k)",
                    1.0,
                    base.iteration_time / faster.evaluate(spec, batch).iteration_time,
                    base.iteration_time / pipe1.evaluate(spec, batch).iteration_time,
                    base.iteration_time / pipe.evaluate(spec, batch).iteration_time,
                    pipe.evaluate(spec, batch).num_partitions,
                )
            )
    return rows


def test_fig08_speedup(benchmark, paper_world):
    rows = run_once(benchmark, lambda: compute_speedups(paper_world))
    table = Table(
        ["config", "FastMoE", "FasterMoE", "PipeMoE(n=1)", "PipeMoE", "chosen n"],
        title="Fig. 8 — speedup over FastMoE (64 GPUs)",
    )
    for row in rows:
        table.add_row(row)
    emit("fig08_speedup", table)

    speedups = {cfg: pipe for cfg, _, _, _, pipe, _ in rows}
    # PipeMoE beats FastMoE on every configuration.
    assert all(s > 1.0 for s in speedups.values())
    # PipeMoE beats FasterMoE on every configuration (paper: avg 2.26x).
    for cfg, _, faster_s, _, pipe_s, _ in rows:
        assert pipe_s > faster_s, cfg
    # Pipelining helps most when compute-bound: larger batches of the
    # same model never reduce the PipeMoE/PipeMoE(n=1) advantage much.
    for model in MODELS:
        small = next(r for r in rows if r[0] == f"{model}(4k)")
        large = next(r for r in rows if r[0] == f"{model}(16k)")
        gain_small = small[4] / small[3]
        gain_large = large[4] / large[3]
        assert gain_large >= 0.9 * gain_small, model
