"""Fig. 3 — stream interference micro-benchmark.

Paper: the relative speed of GeMM computation, NCCL communication and
PCIe memory copy when run concurrently in CUDA streams.  We regenerate
the grid by running pairs (and the three-way mix) of equal-work ops
through the fluid simulator and measuring each victim's effective rate.
"""

from repro.hardware.interference import PAPER_INTERFERENCE, StreamKind
from repro.sim.engine import Op, SimEngine
from repro.utils import Table

from conftest import emit, run_once

KINDS = (StreamKind.COMM, StreamKind.COMP, StreamKind.MEM)
LABELS = {"comm": "comm", "comp": "comp", "mem": "mem"}


def measure(victim: StreamKind, interferers: tuple[StreamKind, ...]) -> float:
    """Effective rate of ``victim`` while ``interferers`` run long ops."""
    engine = SimEngine()
    ops = [Op("victim", 0, victim, 1.0)]
    ops += [Op(f"bg{i}", 0, k, 100.0) for i, k in enumerate(interferers)]
    res = engine.run(ops)
    rec = next(r for r in res.records if r.name == "victim")
    return 1.0 / rec.duration


def compute_grid():
    grid = {}
    for victim in KINDS:
        for interferer in KINDS:
            others = () if interferer == victim else (interferer,)
            grid[(victim.value, interferer.value)] = measure(victim, others)
        grid[(victim.value, "all")] = measure(
            victim, tuple(k for k in KINDS if k != victim)
        )
    return grid


def test_fig03_interference(benchmark):
    grid = run_once(benchmark, compute_grid)
    table = Table(
        ["victim \\ interferer", "comm", "comp", "mem", "all"],
        title="Fig. 3 — relative speed under concurrent streams",
    )
    for victim in ("comm", "comp", "mem"):
        table.add_row(
            [victim]
            + [round(grid[(victim, col)], 3) for col in ("comm", "comp", "mem", "all")]
        )
    emit("fig03_interference", table)

    # Measured rates reproduce the paper's grid exactly (the model is
    # calibrated to it; this validates the simulator applies it faithfully).
    for victim in ("comm", "comp", "mem"):
        for col in ("comm", "comp", "mem", "all"):
            expected = PAPER_INTERFERENCE.table[(victim, col)]
            assert abs(grid[(victim, col)] - expected) < 1e-6, (victim, col)
