"""Scaling study: how the four systems behave from 8 to 64 GPUs.

Sweeps the world size with the GPT-XL layer and prints iteration time,
speedup over FastMoE, adaptive granularity and selected strategy — the
compressed view of the paper's whole evaluation section.  Also exports
a Chrome trace of one pipelined iteration for inspection in
chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/cluster_scaling_study.py
"""

from repro.comm.cost import NcclCostModel
from repro.config import MOE_GPT3_XL
from repro.hardware.device import A100_SXM_40GB
from repro.pipeline.schedule import MoEStageCosts, build_timeline, timeline_makespan
from repro.sim.trace import save_chrome_trace
from repro.systems import (
    FastMoEModel,
    FasterMoEModel,
    MPipeMoEModel,
    PipeMoEModel,
)
from repro.systems.base import SystemContext
from repro.utils import Table

BATCH = 16384


def main() -> None:
    table = Table(
        ["N", "system", "time (ms)", "speedup", "memory (MB)", "n", "strategy"],
        title=f"GPT-XL scaling, B={BATCH} tokens/GPU",
    )
    for world in (8, 16, 32, 64):
        ctx = SystemContext(world_size=world)
        systems = [
            FastMoEModel(ctx),
            FasterMoEModel(ctx),
            PipeMoEModel(ctx),
            MPipeMoEModel(ctx),
        ]
        base = None
        for system in systems:
            rep = system.evaluate(MOE_GPT3_XL, BATCH)
            if base is None:
                base = rep
            table.add_row(
                [
                    world,
                    rep.system,
                    rep.iteration_time * 1e3,
                    base.iteration_time / rep.iteration_time,
                    rep.peak_memory_bytes / 1e6,
                    rep.num_partitions,
                    rep.strategy,
                ]
            )
    print(table)

    # Export one pipelined iteration's timeline as a Chrome trace.
    ctx = SystemContext(world_size=64)
    costs = MoEStageCosts.compute(
        MOE_GPT3_XL, BATCH, 4, A100_SXM_40GB, ctx.comm_model()
    )
    res = timeline_makespan(build_timeline(costs, 4, strategy="S1"))
    save_chrome_trace(res.records, "mpipemoe_timeline.json")
    print(
        f"\nwrote mpipemoe_timeline.json ({len(res.records)} ops, "
        f"makespan {res.makespan * 1e3:.2f} ms) — open in chrome://tracing"
    )


if __name__ == "__main__":
    main()
