"""Train an MoE layer on synthetic tokens across simulated ranks.

The paper's evaluation workload: random-token batches driven through
the MoE layer with Adam (Sec. V-A2), here with a *dynamic batch-size
schedule* so Algorithm 1's adaptive granularity actually engages — the
situation the paper motivates via Tutel's dynamic batches (Sec. III-C).

Run:  python examples/train_moe_transformer_block.py
"""

import repro
from repro.train import Adam, SyntheticTokenDataset, Trainer

WORLD = 4
STEPS = 10


def main() -> None:
    layer = repro.MoELayer(
        d_model=32,
        d_hidden=128,
        num_experts=8,
        world_size=WORLD,
        pipeline=True,
        memory_reuse=True,
        candidate_partitions=(1, 2, 4),
        seed=7,
    )
    dataset = SyntheticTokenDataset(
        d_model=32,
        world_size=WORLD,
        batch=[32, 64, 128],  # dynamic B — exercises the granularity search
        seed=3,
        scale=0.5,
        fixed=False,
    )
    trainer = Trainer(layer, dataset, Adam(layer.parameters(), lr=2e-3))

    print(f"{'step':>4} {'B/rank':>7} {'loss':>9} {'aux':>7} {'n':>3} {'strategy':>8}")
    for step in range(STEPS):
        result = trainer.step(step)
        batch = dataset.batch_size(step)
        print(
            f"{step:>4} {batch:>7} {result.loss:>9.4f} {result.aux_loss:>7.3f} "
            f"{result.num_partitions:>3} {result.strategy:>8}"
        )

    stats = layer.granularity_searcher.stats
    print(
        f"\nAlgorithm 1 stats: {stats.searches} trial searches, "
        f"{stats.trials} simulated trials, {stats.cache_hits} cache hits, "
        f"{stats.range_hits} range hits"
    )
    print("learned ranges (B interval -> n):")
    for lower, upper, n in layer.granularity_searcher.ranges:
        print(f"  [{lower}, {upper}] -> n={n}")


if __name__ == "__main__":
    main()
