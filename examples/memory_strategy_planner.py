"""Plan memory-reuse strategy and footprint for a target deployment.

Given a model preset (Table III) and a cluster size, this example walks
the paper's Sec. III analysis: the Eq. 1-3 footprint breakdown, the
Eq. 5/6 savings per granularity, and the Eq. 10 strategy selection —
then cross-checks the choice against the discrete-event simulator.

Run:  python examples/memory_strategy_planner.py [GPT-S|BERT-L|GPT-XL]
"""

import sys

from repro.comm.cost import NcclCostModel
from repro.config import DGX_A100_CLUSTER, get_preset
from repro.hardware.device import A100_SXM_40GB
from repro.hardware.topology import ClusterTopology
from repro.memory.footprint import FootprintModel
from repro.memory.strategies import strategy_names
from repro.perfmodel.cost import HardwareRates, PerfModel
from repro.perfmodel.selector import StrategySelector
from repro.pipeline.schedule import MoEStageCosts, build_timeline, timeline_makespan
from repro.utils import Table, fmt_bytes

WORLD = 64
BATCH = 16384
N = 4


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "GPT-XL"
    spec = get_preset(model)
    print(f"planning for {spec.name} on {WORLD} GPUs, B={BATCH} tokens/GPU\n")

    # -- Eq. 1-3 breakdown -------------------------------------------------
    fp = FootprintModel(spec, WORLD)
    parts = fp.breakdown(BATCH)
    table = Table(["component", "bytes", "share"], title="footprint breakdown (Fig. 2)")
    total = sum(parts.values())
    for name, nbytes in parts.items():
        table.add_row([name, fmt_bytes(nbytes), f"{nbytes / total:.1%}"])
    print(table, "\n")

    # -- Eq. 5/6 savings per granularity ------------------------------------
    table = Table(["n", "pipelined", "with reuse", "saving (Eq. 6)"],
                  title="memory reuse savings per granularity")
    for n in (2, 4, 8):
        piped = fp.total_bytes(BATCH, pipelined=True)
        reused = fp.total_bytes(BATCH, pipelined=True, reuse_n=n)
        table.add_row([n, fmt_bytes(piped), fmt_bytes(reused),
                       f"{fp.saving_ratio(BATCH, n):.1%}"])
    print(table, "\n")

    # -- Eq. 10 selection ----------------------------------------------------
    topo = ClusterTopology(DGX_A100_CLUSTER)
    comm = NcclCostModel(topo, WORLD)
    rates = HardwareRates.from_cluster(A100_SXM_40GB, comm)
    selector = StrategySelector(
        PerfModel(spec, rates), footprint=fp,
        device_capacity=A100_SXM_40GB.memory_bytes,
    )
    result = selector.select(BATCH, N)
    table = Table(["strategy", "Eq. 10 cost (ms)", "simulated (ms)"],
                  title=f"strategy costs at n={N}")
    costs = MoEStageCosts.compute(spec, BATCH, N, A100_SXM_40GB, comm)
    for name in strategy_names(reuse_only=True):
        sim = timeline_makespan(build_timeline(costs, N, strategy=name)).makespan
        table.add_row([name, result.costs[name] * 1e3, sim * 1e3])
    print(table)
    print(f"\nEq. 10 selects: {result.strategy.name} "
          f"(footprint {fmt_bytes(result.memory_bytes)})")


if __name__ == "__main__":
    main()
