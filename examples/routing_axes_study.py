"""Routing-workload walkthrough: what the gate does to the pipeline.

Three short studies on the GPT-XL x 64-GPU testbed, all driving the
routing axes that used to be hardwired into the cost model (top-k = 1,
fp16 activations, perfectly uniform gating):

1. **Skew ladder** — the hottest expert draws 1x..8x its balanced
   share.  At one expert per GPU the hot device receives that multiple
   of its rows and gates the synchronous iteration, so the adaptive
   granularity coarsens exactly as it would for a bigger batch.
2. **Dtype ladder** — the same operating point with fp8 / fp16 / fp32
   activations on the wire: byte width moves the comm-bound points and
   eventually flips the reuse strategy (cheap comm makes
   recompute-heavy strategies affordable).
3. **Capacity planner** — skew crossed with capacity factors.  With a
   capacity cap the collective buffers stay equal-shaped, so skew stops
   costing time and starts costing *tokens*: the workload model reports
   the hottest expert's capacity pressure and how many routed rows
   overflow (drop) per device.

Everything drives the public :class:`repro.api.Study` facade on the
thread backend (shared in-process evaluator memo); the workload
diagnostics come from :class:`repro.perfmodel.workload.WorkloadSpec`
— the same object the pricing layers consume.

Run:  PYTHONPATH=src python examples/routing_axes_study.py
"""

from __future__ import annotations

import argparse

from repro.api import ScenarioGrid, Study
from repro.config import get_preset
from repro.sweep import scenario_workload
from repro.utils import Table

WORLD = 64
SPEC = "GPT-XL"
BATCH = 8192


def skew_ladder(workers: int) -> None:
    grid = ScenarioGrid(
        systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
        batches=(BATCH,), imbalances=(1.0, 2.0, 4.0, 8.0),
    )
    results = Study(grid).backend("thread").workers(workers).run()
    spec = get_preset(SPEC)
    table = Table(
        ["skew", "bottleneck rows", "n", "strategy", "time (ms)",
         "vs uniform"],
        title=f"Gating skew, {SPEC} x {WORLD} GPUs, B={BATCH}",
    )
    uniform = results[0]["iteration_time"]
    for r in results:
        workload = scenario_workload(r.scenario)
        rows = (
            workload.load(spec, BATCH, WORLD).device_rows
            if workload else BATCH
        )
        table.add_row([
            r.scenario.imbalance, rows, r["n"], r["strategy"],
            r["iteration_time"] * 1e3, r["iteration_time"] / uniform,
        ])
    print(table)
    print("-> a hot expert acts like a bigger batch: n coarsens with skew\n")


def dtype_ladder(workers: int) -> None:
    grid = ScenarioGrid(
        systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
        batches=(BATCH,), dtypes=("fp8", None, "fp32"),
    )
    results = Study(grid).backend("thread").workers(workers).run()
    table = Table(
        ["dtype", "n", "strategy", "time (ms)"],
        title=f"Activation dtype on the wire, {SPEC}, B={BATCH}",
    )
    for r in results:
        table.add_row([
            r.scenario.dtype or "fp16 (default)", r["n"], r["strategy"],
            r["iteration_time"] * 1e3,
        ])
    print(table)
    print("-> wider activations are comm-bound: coarser n, different reuse\n")


def capacity_planner(workers: int) -> None:
    grid = ScenarioGrid(
        systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
        batches=(BATCH,), imbalances=(1.0, 4.0),
        capacity_factors=(None, 1.0, 1.25),
    )
    results = Study(grid).backend("thread").workers(workers).run()
    spec = get_preset(SPEC)
    table = Table(
        ["skew", "capacity f", "priced rows", "hot pressure",
         "dropped rows", "time (ms)"],
        title=f"Skew x capacity factor, {SPEC}, B={BATCH}",
    )
    for r in results:
        workload = scenario_workload(r.scenario)
        load = (
            workload.load(spec, BATCH, WORLD) if workload is not None else None
        )
        table.add_row([
            r.scenario.imbalance,
            r.scenario.capacity_factor or "uncapped",
            load.device_rows if load else BATCH,
            f"{load.hot_pressure:.2f}" if load and load.hot_pressure else "-",
            load.overflow_rows if load else 0,
            r["iteration_time"] * 1e3,
        ])
    print(table)
    print(
        "-> capacity caps trade the skew's time cost for dropped tokens:\n"
        "   equal-shaped buffers keep every device at E*C rows while the\n"
        "   hot expert overflows its slots"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()
    skew_ladder(args.workers)
    dtype_ladder(args.workers)
    capacity_planner(args.workers)


if __name__ == "__main__":
    main()
