"""Expert-placement walkthrough: where the hot expert lives matters.

Two ladders on the GPT-XL x 64-GPU testbed, both driving the public
:class:`repro.api.Study` facade with the new ``placements`` axis:

1. **Straggler ladder** — one GPU throttles from 1.0x down to 0.4x
   compute while gating skew keeps expert 0 hot.  Contiguous sharding
   pins that hot expert to the sick rank; the skew-aware optimizer
   (``placement="optimized"``) re-routes it onto healthy metal, and the
   recovery column shows how much of the straggler regression the move
   claws back.  Watch the Eq. 10 granularity too: the contiguous run
   backs its ``n`` off as the straggler turns the pipeline
   compute-bound, while the optimized run keeps the healthy choice.
2. **Skew ladder** — no straggler, rising imbalance, four placements
   (contiguous, round_robin, shadowed, optimized).  Under uniform
   routing every placement prices identically (conservation: placement
   moves rows, it cannot create them); as the hot expert heats up,
   shadowing splits its rows and the selected ``(n, strategy)`` shifts
   with the bottleneck row count.

Run:  PYTHONPATH=src python examples/placement_study.py
"""

from __future__ import annotations

import argparse

from repro.api import ScenarioGrid, Study
from repro.utils import Table

WORLD = 64
SPEC = "GPT-XL"
BATCH = 24576
IMBALANCE = 4.0


def straggler_ladder(workers: int) -> None:
    severities = (1.0, 0.8, 0.6, 0.5, 0.4)
    grid = ScenarioGrid(
        systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
        batches=(BATCH,), imbalances=(IMBALANCE,),
        stragglers=("single-slow-gpu",), severities=severities,
        placements=("contiguous", "optimized"),
    )
    results = Study(grid).backend("thread").workers(workers).run()
    by_point = {
        (r.scenario.severity, r.scenario.placement): r for r in results
    }
    healthy = by_point[(1.0, "contiguous")]["iteration_time"]
    table = Table(
        ["severity", "placement", "n", "strategy", "time (ms)",
         "recovery"],
        title=(f"Hot expert vs. one slow GPU, {SPEC} x {WORLD}, "
               f"B={BATCH}, skew={IMBALANCE}x"),
    )
    for severity in severities:
        degraded = by_point[(severity, "contiguous")]["iteration_time"]
        for placement in ("contiguous", "optimized"):
            r = by_point[(severity, placement)]
            t = r["iteration_time"]
            gap = degraded - healthy
            recovery = (degraded - t) / gap if gap > 0 else 0.0
            table.add_row([
                severity, placement, r["n"], r["strategy"], t * 1e3,
                f"{recovery:+.0%}" if gap > 0 else "-",
            ])
    print(table)


def skew_ladder(workers: int) -> None:
    grid = ScenarioGrid(
        systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
        batches=(BATCH,), imbalances=(1.0, 2.0, 4.0, 8.0),
        placements=("contiguous", "round_robin", "shadowed", "optimized"),
    )
    results = Study(grid).backend("thread").workers(workers).run()
    table = Table(
        ["skew", "placement", "n", "strategy", "time (ms)", "vs contig"],
        title=f"Gating skew x placement, healthy cluster, B={BATCH}",
    )
    contig = {
        r.scenario.imbalance: r["iteration_time"]
        for r in results if r.scenario.placement == "contiguous"
    }
    for r in results:
        t = r["iteration_time"]
        table.add_row([
            r.scenario.imbalance, r.scenario.placement, r["n"],
            r["strategy"], t * 1e3,
            f"{t / contig[r.scenario.imbalance]:.3f}x",
        ])
    print(table)
    print("(uniform routing: every placement prices identically — "
          "placement moves rows, it cannot create them)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()
    straggler_ladder(args.workers)
    skew_ladder(args.workers)


if __name__ == "__main__":
    main()
