"""Quickstart: the paper's API snippet, end to end.

Builds an MPipeMoE layer (adaptive pipeline + adaptive memory reuse),
runs one forward/backward over four simulated ranks, and prints what the
adaptive machinery decided.  Then re-asks the same question at paper
scale through the public study facade (``repro.api``): one
:class:`~repro.api.Study` prices all four systems on the 64-GPU testbed
and reads the answer off a :class:`~repro.api.ResultSet`.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.api import ScenarioGrid, Study
from repro.tensor import Tensor

WORLD = 4
BATCH = 64  # tokens per rank


def main() -> None:
    # The paper's Sec. IV-C snippet, translated:
    #   moe_layer = pmoe.MoELayer(d_model=1024, d_hidden=4096, top_k=1,
    #                             num_experts=64, pipeline=True,
    #                             memory_reuse=True)
    layer = repro.MoELayer(
        d_model=64,
        d_hidden=256,
        top_k=1,
        num_experts=16,
        world_size=WORLD,
        pipeline=True,
        memory_reuse=True,
        seed=0,
    )

    rng = np.random.default_rng(0)
    xs = [
        Tensor(rng.standard_normal((BATCH, 64)), requires_grad=True)
        for _ in range(WORLD)
    ]

    out = layer.forward(xs)
    print(f"configured pipeline granularity n = {out.num_partitions}")
    print(f"selected memory-reuse strategy    = {out.strategy}")
    print(f"expert capacity per source rank   = {out.capacity}")
    print(f"dropped tokens (over capacity)    = {out.dropped_tokens}")
    print(f"aux (load-balancing) loss         = {out.aux_loss.item():.4f}")

    # Backprop through the pipelined, memory-reused execution: the
    # dropped activations are restored per the selected strategy.
    loss = out.outputs[0].sum()
    for o in out.outputs[1:]:
        loss = loss + o.sum()
    (loss + 0.01 * out.aux_loss).backward()

    gate_grad = np.abs(layer.gate.wg.grad).sum()
    expert_grad = np.abs(layer.experts[0][0].w1.grad).sum()
    print(f"|gate grad| = {gate_grad:.3f}, |expert[0][0].w1 grad| = {expert_grad:.3f}")

    # The same question at paper scale, through the public API: how do
    # the four systems compare on the 64-GPU GPT-XL testbed?
    results = Study(
        ScenarioGrid(
            systems=("fastmoe", "fastermoe", "pipemoe", "mpipemoe"),
            batches=(16384,),
        )
    ).run()
    print()
    print(results.table(
        [
            "system",
            ("time (ms)", lambda r: r["iteration_time"] * 1e3),
            ("memory (MB)", lambda r: r["peak_memory_bytes"] / 1e6),
            "n",
            "strategy",
        ],
        title="repro.api study: GPT-XL, 64 GPUs, B=16384",
    ))
    fastest = results.best("iteration_time")
    print(f"fastest system: {fastest['system']} "
          f"({fastest['iteration_time'] * 1e3:.1f} ms)")
    print("quickstart OK")


if __name__ == "__main__":
    main()
