"""Heterogeneous-cluster walkthrough: what one sick GPU costs you.

Three short studies on the GPT-XL x 64-GPU testbed:

1. **Severity ladder** — a single GPU throttles from 1.0x to 0.4x
   compute; MPipeMoE re-runs Algorithm 1 and the strategy search on the
   heterogeneous context at every step, and the table shows the
   granularity backing off (n=8 -> 4) as the straggler turns the
   pipeline compute-bound.
2. **Skew-kind comparison** — the same severity applied as a compute
   straggler, a degraded NIC, and a whole slow node: three different
   bottlenecks, three different adaptive responses.
3. **Mixed pool** — a V100 dropped into the A100 pool via a device-spec
   override (no hand-written multipliers: the capability ratio is
   derived from the specs).

All of it drives the public :class:`repro.api.Study` facade — the same
machinery as the paper-figure benches — on the thread backend so every
point shares one in-process evaluator memo; the cache columns show what
that sharing saved.  The skew-kind study uses ``Study.cluster(...)``,
the facade's hetero overlay: one homogeneous grid, re-run per cluster.

Run:  PYTHONPATH=src python examples/straggler_study.py
"""

from __future__ import annotations

import argparse

from repro.api import ResultSet, ScenarioGrid, Study
from repro.config import get_preset
from repro.hardware.device import V100_SXM_32GB
from repro.hardware.hetero import HeteroClusterSpec, StragglerModel
from repro.systems import MPipeMoEModel
from repro.systems.base import SystemContext
from repro.utils import Table

WORLD = 64
SPEC = "GPT-XL"
BATCH = 24576


def severity_ladder(workers: int) -> None:
    grid = ScenarioGrid(
        systems=("mpipemoe",), specs=(SPEC,), world_sizes=(WORLD,),
        batches=(BATCH,), stragglers=("single-slow-gpu",),
        severities=(1.0, 0.8, 0.6, 0.5, 0.4),
    )
    results = Study(grid).backend("thread").workers(workers).run()
    table = Table(
        ["severity", "n", "strategy", "time (ms)", "vs healthy",
         "memo hits"],
        title=f"Single slow GPU, {SPEC} x {WORLD} GPUs, B={BATCH}",
    )
    healthy = results[0]["iteration_time"]
    for r in results:
        table.add_row([
            r.scenario.severity, r["n"], r["strategy"],
            r["iteration_time"] * 1e3, r["iteration_time"] / healthy,
            r.cache_stats["hits"] if r.cache_stats else 0,
        ])
    print(table)


def skew_kinds(workers: int) -> None:
    # One homogeneous grid; the facade's cluster overlay re-targets it
    # at each straggler kind without rebuilding the axes.
    base = Study(
        ScenarioGrid(systems=("mpipemoe",), specs=(SPEC,),
                     world_sizes=(WORLD,), batches=(BATCH,))
    ).backend("thread").workers(workers)
    rows = []
    for kind in ("single-slow-gpu", "degraded-link", "slow-node"):
        rows.extend(base.cluster(kind, severity=0.5).run())
    print(ResultSet(rows).table(
        ["label", "n", "strategy", ("time (ms)",
         lambda r: r["iteration_time"] * 1e3)],
        title="Same severity, three bottlenecks",
    ))


def mixed_pool() -> None:
    spec = get_preset(SPEC)
    plain = MPipeMoEModel(SystemContext(world_size=WORLD))
    mixed = MPipeMoEModel(SystemContext(
        world_size=WORLD,
        hetero=HeteroClusterSpec.of(devices={13: V100_SXM_32GB}),
    ))
    table = Table(["pool", "n", "strategy", "time (ms)"],
                  title=f"One V100 in the A100 pool, B={BATCH}")
    for name, model in (("64x A100", plain), ("63x A100 + 1x V100", mixed)):
        r = model.evaluate(spec, BATCH)
        table.add_row([name, r.num_partitions, r.strategy,
                       r.iteration_time * 1e3])
    print(table)
    ratio = (
        mixed.context.hetero.rates_for(13).comp
        if mixed.context.hetero else 1.0
    )
    print(f"(V100 comp ratio derived from device specs: {ratio:.2f}x)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()
    severity_ladder(args.workers)
    skew_kinds(args.workers)
    mixed_pool()
    # A jitter postscript: every device slightly off-nominal.
    jittered = SystemContext(
        world_size=WORLD,
        hetero=StragglerModel("random-jitter", severity=0.8, seed=7).build(),
    )
    r = MPipeMoEModel(jittered).evaluate(get_preset(SPEC), BATCH)
    print(f"seeded jitter (floor 0.8x, seed 7): n={r.num_partitions}, "
          f"{r.strategy}, {r.iteration_time*1e3:.1f} ms")


if __name__ == "__main__":
    main()
