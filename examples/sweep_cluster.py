"""Cluster-scale scenario study driven by the sweep subsystem.

Declares a 100+-point study in four grids — the full system comparison
over world sizes and batches, a memory-strategy ablation, a granularity
scan, and a model-spec cross-check — fans it out over worker processes
with on-disk caching, and post-processes the results into paper-style
tables plus per-world-size Pareto frontiers (Fig. 11 at every scale).

Re-running is nearly free: completed scenarios are cached under
``--cache-dir`` keyed by scenario hash, so extending the grids only
evaluates the new points.

Run:  PYTHONPATH=src python examples/sweep_cluster.py [--workers 4]
"""

from __future__ import annotations

import argparse
import time

from repro.sweep import (
    ScenarioGrid,
    SweepRunner,
    group_by,
    pareto_front,
    sweep_table,
)

WORLDS = (8, 16, 32, 64)
BATCHES = (4096, 8192, 16384, 32768, 65536)

#: Full system comparison: 4 systems x 4 world sizes x 5 batches = 80.
COMPARISON = ScenarioGrid(
    systems=("fastmoe", "fastermoe", "pipemoe", "mpipemoe"),
    world_sizes=WORLDS,
    batches=BATCHES,
)
#: Pinned-strategy ablation at 64 GPUs (Fig. 13's S1-S4 axis): 8 points.
STRATEGIES = ScenarioGrid(
    systems=("mpipemoe",), world_sizes=(64,), batches=(8192, 32768),
    ns=(4,), strategies=("S1", "S2", "S3", "S4"),
)
#: Granularity scan (Fig. 12's n axis): 10 points.
GRANULARITY = ScenarioGrid(
    systems=("pipemoe",), world_sizes=(16, 64), batches=(16384,),
    ns=(1, 2, 4, 8, 16),
)
#: Model-spec cross-check on the two smaller Table III layers: 8 points.
SPECS = ScenarioGrid(
    systems=("pipemoe", "mpipemoe"), specs=("GPT-S", "BERT-L"),
    world_sizes=(64,), batches=(16384, 32768),
)

STUDY = COMPARISON + STRATEGIES + GRANULARITY + SPECS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--cache-dir", default=".sweep_cache")
    args = parser.parse_args()

    runner = SweepRunner(cache_dir=args.cache_dir, workers=args.workers)
    t0 = time.perf_counter()
    results = runner.run(STUDY)
    wall = time.perf_counter() - t0
    hits = sum(r.cached for r in results)
    print(
        f"{len(results)} scenarios in {wall:.1f}s "
        f"({hits} cache hits, {len(results) - hits} evaluated, "
        f"workers={args.workers})\n"
    )

    comparison = results[: len(COMPARISON)]
    print(
        sweep_table(
            comparison,
            [
                "world_size",
                "batch",
                "system",
                ("time (ms)", lambda r: r["iteration_time"] * 1e3),
                ("memory (MB)", lambda r: r["peak_memory_bytes"] / 1e6),
                "n",
                "strategy",
            ],
            title="System comparison across cluster scales (GPT-XL)",
        )
    )

    # Fig. 11 at every scale: the memory-time frontier per world size.
    print("\nPareto frontiers (time, memory) per world size, B=16384:")
    at_b = [r for r in comparison if r.scenario.batch == 16384]
    for world, group in sorted(group_by(at_b, "world_size").items()):
        front = pareto_front(group)
        points = ", ".join(
            f"{r['system']} ({r['iteration_time'] * 1e3:.1f} ms, "
            f"{r['peak_memory_bytes'] / 1e6:.0f} MB)"
            for r in front
        )
        print(f"  N={world:3d}: {points}")

    # Largest-scale speedup summary.
    biggest = group_by(
        [r for r in comparison if r.scenario.world_size == 64], "batch"
    )
    print("\nMPipeMoE speedup over FastMoE at 64 GPUs:")
    for batch, group in sorted(biggest.items()):
        by_system = {r["system"]: r for r in group}
        ratio = (
            by_system["FastMoE"]["iteration_time"]
            / by_system["MPipeMoE"]["iteration_time"]
        )
        print(f"  B={batch:6d}: {ratio:.2f}x")

    strategies = results[len(COMPARISON): len(COMPARISON) + len(STRATEGIES)]
    print()
    print(
        sweep_table(
            strategies,
            [
                "batch",
                "strategy",
                ("time (ms)", lambda r: r["iteration_time"] * 1e3),
                ("memory (MB)", lambda r: r["peak_memory_bytes"] / 1e6),
            ],
            title="Pinned memory-reuse strategies, 64 GPUs, n=4 (Fig. 13 axis)",
        )
    )


if __name__ == "__main__":
    main()
