"""Cluster-scale scenario study driven by the public ``repro.api`` facade.

Declares a 100+-point study in four grids — the full system comparison
over world sizes and batches, a memory-strategy ablation, a granularity
scan, and a model-spec cross-check — fans it out over an execution
backend of your choice with on-disk caching, and post-processes the
results through the :class:`~repro.api.ResultSet` accessors into
paper-style tables plus per-world-size Pareto frontiers (Fig. 11 at
every scale).

Re-running is nearly free: completed scenarios are cached under
``--cache-dir`` keyed by scenario hash, so extending the grids only
evaluates the new points.  The same study runs unchanged on any
registered backend (serial / thread / process / asyncio) — results are
byte-identical by contract.

Run:  PYTHONPATH=src python examples/sweep_cluster.py [--workers 4]
      PYTHONPATH=src python examples/sweep_cluster.py --backend thread
"""

from __future__ import annotations

import argparse
import time

from repro.api import ScenarioGrid, Study, available_backends

WORLDS = (8, 16, 32, 64)
BATCHES = (4096, 8192, 16384, 32768, 65536)

#: Full system comparison: 4 systems x 4 world sizes x 5 batches = 80.
COMPARISON = ScenarioGrid(
    systems=("fastmoe", "fastermoe", "pipemoe", "mpipemoe"),
    world_sizes=WORLDS,
    batches=BATCHES,
)
#: Pinned-strategy ablation at 64 GPUs (Fig. 13's S1-S4 axis): 8 points.
STRATEGIES = ScenarioGrid(
    systems=("mpipemoe",), world_sizes=(64,), batches=(8192, 32768),
    ns=(4,), strategies=("S1", "S2", "S3", "S4"),
)
#: Granularity scan (Fig. 12's n axis): 10 points.
GRANULARITY = ScenarioGrid(
    systems=("pipemoe",), world_sizes=(16, 64), batches=(16384,),
    ns=(1, 2, 4, 8, 16),
)
#: Model-spec cross-check on the two smaller Table III layers: 8 points.
SPECS = ScenarioGrid(
    systems=("pipemoe", "mpipemoe"), specs=("GPT-S", "BERT-L"),
    world_sizes=(64,), batches=(16384, 32768),
)

STUDY_GRID = COMPARISON + STRATEGIES + GRANULARITY + SPECS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backend", default="process",
                        choices=available_backends())
    parser.add_argument("--cache-dir", default=".sweep_cache")
    args = parser.parse_args()

    study = (
        Study(STUDY_GRID)
        .backend(args.backend)
        .workers(args.workers)
        .cache(args.cache_dir)
    )
    t0 = time.perf_counter()
    results = study.run()
    wall = time.perf_counter() - t0
    stats = results.cache_stats()
    print(
        f"{stats['scenarios']} scenarios in {wall:.1f}s "
        f"({stats['disk_hits']} cache hits, "
        f"{stats['scenarios'] - stats['disk_hits']} evaluated, "
        f"backend={args.backend}, workers={args.workers})\n"
    )

    comparison = results[: len(COMPARISON)]
    print(
        comparison.table(
            [
                "world_size",
                "batch",
                "system",
                ("time (ms)", lambda r: r["iteration_time"] * 1e3),
                ("memory (MB)", lambda r: r["peak_memory_bytes"] / 1e6),
                "n",
                "strategy",
            ],
            title="System comparison across cluster scales (GPT-XL)",
        )
    )

    # Fig. 11 at every scale: the memory-time frontier per world size.
    print("\nPareto frontiers (time, memory) per world size, B=16384:")
    at_b = comparison.group_by("batch")[16384]
    for world, group in sorted(at_b.group_by("world_size").items()):
        points = ", ".join(
            f"{r['system']} ({r['iteration_time'] * 1e3:.1f} ms, "
            f"{r['peak_memory_bytes'] / 1e6:.0f} MB)"
            for r in group.pareto()
        )
        print(f"  N={world:3d}: {points}")

    # Largest-scale speedup summary.
    biggest = comparison.group_by("world_size")[64].group_by("batch")
    print("\nMPipeMoE speedup over FastMoE at 64 GPUs:")
    for batch, group in sorted(biggest.items()):
        by_system = {r["system"]: r for r in group}
        ratio = (
            by_system["FastMoE"]["iteration_time"]
            / by_system["MPipeMoE"]["iteration_time"]
        )
        print(f"  B={batch:6d}: {ratio:.2f}x")

    strategies = results[len(COMPARISON): len(COMPARISON) + len(STRATEGIES)]
    print()
    print(
        strategies.table(
            [
                "batch",
                "strategy",
                ("time (ms)", lambda r: r["iteration_time"] * 1e3),
                ("memory (MB)", lambda r: r["peak_memory_bytes"] / 1e6),
            ],
            title="Pinned memory-reuse strategies, 64 GPUs, n=4 (Fig. 13 axis)",
        )
    )


if __name__ == "__main__":
    main()
