"""Legacy setup shim.

Lets ``pip install -e . --no-build-isolation --no-use-pep517`` work on
environments whose setuptools predates PEP 660 editable wheels (the
offline toolchain used here).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
